//! Seeded soak driver: a long-running scenario fleet interleaving every
//! cluster operation — Zipfian ingest, point/range/index queries, churn
//! storms with concurrent per-dataset rebalances, crash/recovery — with
//! invariants checked continuously between steps.
//!
//! Usage:
//!
//! ```text
//! soak --quick                 # the CI profile: >= 1M records, 12 nodes,
//!                              # Zipfian s = 1.1, >= 3 churn events
//! soak --full                  # the nightly profile: 16 nodes, 4M records
//! soak --chaos                 # layer the seeded fault plane on top:
//!                              # transient ship failures absorbed by retry,
//!                              # slow nodes absorbed by straggler
//!                              # speculation, plus a permanent node loss per
//!                              # grow event — alternating the fresh node
//!                              # (re-planned, zero data loss) with an
//!                              # established one whose lost buckets serve
//!                              # typed degraded errors until repair
//! soak --seed 0xdead           # replay a failing run exactly
//! soak --json soak.json        # machine-readable report
//! ```
//!
//! Exits 0 on a clean run. On any invariant violation it prints the seed
//! and the executed-op trace (replay by rerunning with `--seed`) and
//! exits 1.

use dynahash_bench::json::Json;
use dynahash_bench::scenario::{run_soak, SoakConfig, SoakReport};

struct Args {
    quick: bool,
    full: bool,
    chaos: bool,
    seed: u64,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        full: false,
        chaos: false,
        seed: 0x50a6_2026,
        json: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--full" => args.full = true,
            "--chaos" => args.chaos = true,
            "--seed" => {
                let raw = iter.next().unwrap_or_default();
                let parsed = if let Some(hex) = raw.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16)
                } else {
                    raw.parse()
                };
                match parsed {
                    Ok(s) => args.seed = s,
                    Err(_) => {
                        eprintln!("--seed requires a u64 (decimal or 0x-hex)");
                        std::process::exit(2);
                    }
                }
            }
            "--json" => {
                args.json = iter.next();
                if args.json.is_none() {
                    eprintln!("--json requires a path");
                    std::process::exit(2);
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: soak [--quick | --full] [--chaos] [--seed <u64>] [--json <path>]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn report_json(cfg: &SoakConfig, report: &SoakReport) -> Json {
    Json::obj([
        (
            "config",
            Json::obj([
                ("seed", Json::str(format!("{:#x}", cfg.seed))),
                ("nodes", Json::Int(cfg.nodes as u64)),
                ("datasets", Json::Int(cfg.datasets as u64)),
                ("key_universe", Json::Int(cfg.key_universe)),
                ("target_ingest", Json::Int(cfg.target_ingest)),
                ("zipf_s", Json::Num(cfg.zipf_s)),
                ("steps", Json::Int(cfg.steps as u64)),
                ("churn_events", Json::Int(cfg.churn_events as u64)),
            ]),
        ),
        ("passed", Json::Bool(report.passed())),
        ("steps_run", Json::Int(report.steps_run as u64)),
        ("records_ingested", Json::Int(report.records_ingested)),
        ("live_records", Json::Int(report.live_records)),
        ("queries_run", Json::Int(report.queries_run)),
        ("deletes", Json::Int(report.deletes)),
        ("churn_events", Json::Int(report.churn_events as u64)),
        ("rebalances", Json::Int(report.rebalances as u64)),
        ("crashes", Json::Int(report.crashes as u64)),
        ("chaos", Json::Bool(cfg.chaos)),
        ("transient_faults", Json::Int(report.transient_faults)),
        ("fault_retries", Json::Int(report.fault_retries)),
        ("reroutes", Json::Int(report.reroutes)),
        ("reshipped", Json::Int(report.reshipped)),
        ("lost_nodes", Json::Int(report.lost_nodes as u64)),
        (
            "established_losses",
            Json::Int(report.established_losses as u64),
        ),
        ("speculated", Json::Int(report.speculated)),
        ("speculation_wins", Json::Int(report.speculation_wins)),
        ("repairs", Json::Int(report.repairs)),
        ("repaired_buckets", Json::Int(report.repaired_buckets)),
        ("degraded_reads", Json::Int(report.degraded_reads)),
        ("degraded_writes", Json::Int(report.degraded_writes)),
        (
            "degraded",
            Json::Arr(report.degraded.iter().map(Json::str).collect()),
        ),
        ("redirects", Json::Int(report.redirects)),
        ("final_nodes", Json::Int(report.final_nodes as u64)),
        ("control", Json::Bool(cfg.control)),
        ("auto_triggers", Json::Int(report.auto_triggers)),
        ("auto_commits", Json::Int(report.auto_commits)),
        ("hot_splits", Json::Int(report.hot_splits)),
        ("suppressed", Json::Int(report.suppressed)),
        (
            "footprint",
            Json::obj([
                ("records", Json::Int(report.footprint.records)),
                (
                    "resident_bytes",
                    Json::Int(report.footprint.resident_bytes()),
                ),
                (
                    "legacy_resident_bytes",
                    Json::Int(report.footprint.legacy_resident_bytes()),
                ),
                ("inline_keys", Json::Int(report.footprint.inline_keys)),
            ]),
        ),
        (
            "violations",
            Json::Arr(report.violations.iter().map(Json::str).collect()),
        ),
    ])
}

fn main() {
    let args = parse_args();
    if args.quick && args.full {
        eprintln!("--quick and --full are mutually exclusive");
        std::process::exit(2);
    }
    let mut cfg = if args.full {
        SoakConfig::full(args.seed)
    } else {
        // --quick is also the default profile
        SoakConfig::quick(args.seed)
    };
    cfg.chaos = args.chaos;

    println!(
        "soak: seed {:#x}, {} nodes, {} datasets, {} target records, \
         Zipfian s={}, {} steps, {} churn events",
        cfg.seed,
        cfg.nodes,
        cfg.datasets,
        cfg.target_ingest,
        cfg.zipf_s,
        cfg.steps,
        cfg.churn_events
    );
    let report = run_soak(&cfg);
    println!(
        "ran {} steps: {} records ingested ({} live), {} queries, {} deletes, \
         {} churn events, {} rebalances, {} crashes, {} session redirects, \
         {} nodes at the end",
        report.steps_run,
        report.records_ingested,
        report.live_records,
        report.queries_run,
        report.deletes,
        report.churn_events,
        report.rebalances,
        report.crashes,
        report.redirects,
        report.final_nodes
    );
    if cfg.chaos {
        println!(
            "fault plane: {} transients injected ({} retries absorbed them), \
             {} nodes lost, {} moves rerouted/canceled, {} buckets re-shipped",
            report.transient_faults,
            report.fault_retries,
            report.lost_nodes,
            report.reroutes,
            report.reshipped
        );
        println!(
            "recovery plane: {} established-node losses, {} legs speculated \
             ({} backups won), {} repairs restored {} buckets, {} degraded \
             reads and {} degraded writes served typed errors",
            report.established_losses,
            report.speculated,
            report.speculation_wins,
            report.repairs,
            report.repaired_buckets,
            report.degraded_reads,
            report.degraded_writes
        );
    }
    if cfg.control {
        println!(
            "control plane: {} auto-triggers ({} committed), {} hot-bucket \
             splits, {} decisions suppressed by hysteresis/cooldown",
            report.auto_triggers, report.auto_commits, report.hot_splits, report.suppressed
        );
    }
    println!(
        "footprint: {} records resident in {} bytes ({:.1} B/record; legacy \
         layout would hold {} bytes), {} keys inline",
        report.footprint.records,
        report.footprint.resident_bytes(),
        report.footprint.bytes_per_record(),
        report.footprint.legacy_resident_bytes(),
        report.footprint.inline_keys
    );

    if let Some(path) = &args.json {
        let doc = report_json(&cfg, &report);
        if let Err(e) = std::fs::write(path, doc.render() + "\n") {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("machine-readable report written to {path}");
    }

    if !report.passed() {
        eprintln!("{}", report.failure_banner());
        std::process::exit(1);
    }
    if cfg.chaos {
        // The chaos gates: faults must actually have been injected, every
        // transient absorbed by a retry (never an abort — an abort would
        // have failed the run above), and every loss re-planned.
        if report.transient_faults == 0 || report.lost_nodes == 0 {
            eprintln!(
                "chaos soak injected nothing (transients {}, losses {}) — \
                 the profile is too small to exercise the fault plane",
                report.transient_faults, report.lost_nodes
            );
            std::process::exit(1);
        }
        if report.transient_faults != report.fault_retries {
            eprintln!(
                "chaos soak: {} transients but {} retries — a transient \
                 escaped the retry budget",
                report.transient_faults, report.fault_retries
            );
            std::process::exit(1);
        }
        if report.reroutes == 0 {
            eprintln!("chaos soak: a node was lost but nothing was re-planned");
            std::process::exit(1);
        }
        // The recovery gates: chaos alternates its losses, so any profile
        // with at least two grow events must have killed an established
        // node, degraded its resident buckets, and repaired every one of
        // them before the final invariant battery.
        if report.established_losses == 0 || report.repaired_buckets == 0 {
            eprintln!(
                "chaos soak never exercised the repair plane (established \
                 losses {}, repaired buckets {})",
                report.established_losses, report.repaired_buckets
            );
            std::process::exit(1);
        }
        if !report.degraded.is_empty() {
            eprintln!(
                "chaos soak ended with degraded datasets: {:?}",
                report.degraded
            );
            std::process::exit(1);
        }
    }
    if cfg.control {
        // The control gate: the spliced query hotspots must have pushed the
        // armed plane through at least one full decision cycle.
        if report.auto_triggers == 0 || report.auto_commits == 0 {
            eprintln!(
                "control soak: the hotspot never drove the plane through a \
                 decision cycle (triggers {}, commits {})",
                report.auto_triggers, report.auto_commits
            );
            std::process::exit(1);
        }
    }
    println!("soak passed: zero invariant violations");
}
