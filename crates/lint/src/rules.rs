//! The per-file rule families.
//!
//! Every rule works on the masked view produced by [`crate::lexer`], so
//! comments and string literals can never trigger a finding. Each function
//! returns raw findings; the engine in [`crate::engine`] applies waivers and
//! the budget afterwards.

use crate::lexer::{find_from, LexedFile};
use crate::report::{Finding, Rule};

/// Where a file sits in the workspace, derived from its relative path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileScope {
    /// `crates/<name>/src/**`
    CrateSrc(String),
    /// `crates/<name>/**` outside `src` (benches, tests, bins).
    CrateOther(String),
    /// Root `src/`, `tests/`, or `examples/` — umbrella-level code.
    Root,
}

impl FileScope {
    /// Classifies a forward-slash relative path.
    pub fn of(path: &str) -> FileScope {
        let parts: Vec<&str> = path.split('/').collect();
        if parts.len() >= 3 && parts[0] == "crates" {
            let name = parts[1].to_string();
            if parts[2] == "src" {
                return FileScope::CrateSrc(name);
            }
            return FileScope::CrateOther(name);
        }
        FileScope::Root
    }

    /// The enclosing crate directory name, if any.
    pub fn crate_name(&self) -> Option<&str> {
        match self {
            FileScope::CrateSrc(n) | FileScope::CrateOther(n) => Some(n),
            FileScope::Root => None,
        }
    }
}

/// The workspace layering: which `dynahash_*` crates each crate may reach.
/// `None` means the crate directory is not part of the known layering (the
/// rule stays silent rather than guessing).
pub fn allowed_deps(crate_dir: &str) -> Option<&'static [&'static str]> {
    match crate_dir {
        "lsm" => Some(&[]),
        "core" => Some(&["lsm"]),
        "cluster" => Some(&["core", "lsm"]),
        "tpch" => Some(&["core", "lsm", "cluster"]),
        "bench" => Some(&["core", "lsm", "cluster", "tpch"]),
        "lint" => Some(&[]),
        _ => None,
    }
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Finds word-boundary occurrences of `word` in `masked`, returning byte
/// offsets.
fn word_occurrences(masked: &str, word: &str) -> Vec<usize> {
    let bytes = masked.as_bytes();
    let needle = word.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = find_from(bytes, needle, from) {
        from = pos + 1;
        let before_ok = pos == 0 || !is_ident(bytes[pos - 1]);
        let after = pos + needle.len();
        let after_ok = after >= bytes.len() || !is_ident(bytes[after]);
        if before_ok && after_ok {
            out.push(pos);
        }
    }
    out
}

/// Rule family 1 (source half): `use dynahash_*` / qualified `dynahash_*::`
/// references must respect the layering. The manifest half lives in
/// [`crate::manifest`].
pub fn layering_use(path: &str, scope: &FileScope, lexed: &LexedFile) -> Vec<Finding> {
    let Some(crate_dir) = scope.crate_name() else {
        return Vec::new(); // umbrella code may use every crate
    };
    let Some(allowed) = allowed_deps(crate_dir) else {
        return Vec::new();
    };
    let mut findings = Vec::new();
    for pos in word_prefix_occurrences(&lexed.masked, "dynahash_") {
        let bytes = lexed.masked.as_bytes();
        let mut end = pos + "dynahash_".len();
        while end < bytes.len() && is_ident(bytes[end]) {
            end += 1;
        }
        let referenced = &lexed.masked[pos + "dynahash_".len()..end];
        if allowed_deps(referenced).is_none() {
            continue; // not a workspace crate — a local `dynahash_*` identifier
        }
        if referenced == crate_dir {
            continue; // a crate may name itself (bins, benches, doc paths)
        }
        if !allowed.contains(&referenced) {
            findings.push(Finding {
                rule: Rule::Layering,
                file: path.to_string(),
                line: lexed.line_of(pos),
                message: format!(
                    "crate `{crate_dir}` must not reach `dynahash_{referenced}` \
                     (layering is lsm ← core ← cluster ← {{tpch, bench}})"
                ),
                waived: false,
            });
        }
    }
    findings
}

/// Occurrences of identifiers *starting with* `prefix` (word boundary before
/// the prefix only).
fn word_prefix_occurrences(masked: &str, prefix: &str) -> Vec<usize> {
    let bytes = masked.as_bytes();
    let needle = prefix.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = find_from(bytes, needle, from) {
        from = pos + 1;
        if pos == 0 || !is_ident(bytes[pos - 1]) {
            out.push(pos);
        }
    }
    out
}

/// The demoted raw accessors of rule family 2.
const RAW_ACCESSORS: [&str; 3] = [".partition(", ".partition_mut(", ".route_key("];

/// Rule family 2: outside `crates/cluster`, the raw partition accessors are
/// reserved for the `cluster.admin()` escape hatch. A call passes when the
/// enclosing statement mentions `admin` (either a chained `.admin()` call or
/// a local binding produced by one); raw `cluster.ingest(…)` is flagged the
/// same way, while session/loader `ingest` stays untouched.
pub fn session_discipline(path: &str, scope: &FileScope, lexed: &LexedFile) -> Vec<Finding> {
    if scope.crate_name() == Some("cluster") {
        return Vec::new(); // the cluster crate implements the accessors
    }
    let mut findings = Vec::new();
    let masked = &lexed.masked;
    for accessor in RAW_ACCESSORS {
        let mut from = 0usize;
        while let Some(pos) = find_from(masked.as_bytes(), accessor.as_bytes(), from) {
            from = pos + 1;
            if !statement_prefix(masked, pos).contains("admin") {
                findings.push(Finding {
                    rule: Rule::Session,
                    file: path.to_string(),
                    line: lexed.line_of(pos),
                    message: format!(
                        "raw accessor `{}` outside crates/cluster must be reached \
                         via `cluster.admin()` in the same statement",
                        accessor.trim_start_matches('.').trim_end_matches('(')
                    ),
                    waived: false,
                });
            }
        }
    }
    // Raw ingest: flag only `cluster.ingest(…)`-shaped receivers; sessions,
    // loaders, and feeds own `ingest` legitimately.
    let mut from = 0usize;
    while let Some(pos) = find_from(masked.as_bytes(), b".ingest(", from) {
        from = pos + 1;
        let receiver = receiver_ident(masked, pos);
        let raw_receiver = receiver == "cluster" || receiver.ends_with("_cluster");
        if raw_receiver && !statement_prefix(masked, pos).contains("admin") {
            findings.push(Finding {
                rule: Rule::Session,
                file: path.to_string(),
                line: lexed.line_of(pos),
                message: "raw `cluster.ingest(…)` outside crates/cluster — go through \
                          `cluster.session(ds)` or `cluster.admin()`"
                    .to_string(),
                waived: false,
            });
        }
    }
    findings
}

/// The text of the statement enclosing `pos`, from the previous `;`, `{`,
/// or `}` up to `pos`.
fn statement_prefix(masked: &str, pos: usize) -> &str {
    let bytes = masked.as_bytes();
    let mut start = pos;
    while start > 0 {
        match bytes[start - 1] {
            b';' | b'{' | b'}' => break,
            _ => start -= 1,
        }
    }
    &masked[start..pos]
}

/// The identifier immediately preceding the `.` of a method call at `pos`
/// (empty when the receiver is a chained call or expression).
fn receiver_ident(masked: &str, dot_pos: usize) -> &str {
    let bytes = masked.as_bytes();
    let mut end = dot_pos;
    while end > 0 && bytes[end - 1].is_ascii_whitespace() {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && is_ident(bytes[start - 1]) {
        start -= 1;
    }
    &masked[start..end]
}

/// The production crates covered by the panic audit.
pub const PANIC_AUDITED_CRATES: [&str; 3] = ["core", "cluster", "lsm"];

const PANIC_TOKENS: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

/// Rule family 3: panics in the production crates must carry a waiver
/// naming the invariant that makes the site unreachable. `#[cfg(test)]`
/// items are exempt.
pub fn panic_audit(path: &str, scope: &FileScope, lexed: &LexedFile) -> Vec<Finding> {
    let audited = matches!(scope, FileScope::CrateSrc(name)
        if PANIC_AUDITED_CRATES.contains(&name.as_str()));
    if !audited {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for token in PANIC_TOKENS {
        for pos in token_occurrences(&lexed.masked, token) {
            let line = lexed.line_of(pos);
            if lexed.is_test_line(line) {
                continue;
            }
            findings.push(Finding {
                rule: Rule::Panic,
                file: path.to_string(),
                line,
                message: format!(
                    "`{}` in production code — propagate a Result or waive with the \
                     invariant that makes this unreachable",
                    token.trim_start_matches('.').trim_end_matches('(')
                ),
                waived: false,
            });
        }
    }
    findings
}

/// Occurrences of a token whose leading character must sit on a word
/// boundary when it is alphanumeric (so `panic!` does not match
/// `should_panic!`-style longer identifiers).
fn token_occurrences(masked: &str, token: &str) -> Vec<usize> {
    let bytes = masked.as_bytes();
    let needle = token.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = find_from(bytes, needle, from) {
        from = pos + 1;
        let boundary_needed = is_ident(needle[0]);
        if !boundary_needed || pos == 0 || !is_ident(bytes[pos - 1]) {
            out.push(pos);
        }
    }
    out
}

/// The single module allowed to read the wall clock.
pub const TIMING_MODULE: &str = "crates/bench/src/timing.rs";

/// Files where unordered iteration would feed the deterministic wave
/// scheduler; `HashMap`/`HashSet` are banned there outright.
pub const ORDERING_SENSITIVE_FILES: [&str; 6] = [
    "crates/core/src/plan.rs",
    "crates/core/src/directory.rs",
    "crates/cluster/src/job.rs",
    "crates/cluster/src/fault.rs",
    "crates/cluster/src/control.rs",
    "crates/cluster/src/repair.rs",
];

/// Rule family 4: sim-time determinism. `SystemTime`/`Instant` belong to
/// `dynahash_bench::timing` alone, and the scheduler-feeding files must use
/// ordered collections.
pub fn determinism(path: &str, lexed: &LexedFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    if path != TIMING_MODULE {
        for word in ["SystemTime", "Instant"] {
            for pos in word_occurrences(&lexed.masked, word) {
                findings.push(Finding {
                    rule: Rule::Determinism,
                    file: path.to_string(),
                    line: lexed.line_of(pos),
                    message: format!(
                        "`{word}` outside {TIMING_MODULE} breaks sim-time determinism — \
                         use dynahash_bench::timing or the sim clock"
                    ),
                    waived: false,
                });
            }
        }
    }
    if ORDERING_SENSITIVE_FILES.contains(&path) {
        for word in ["HashMap", "HashSet"] {
            for pos in word_occurrences(&lexed.masked, word) {
                findings.push(Finding {
                    rule: Rule::Determinism,
                    file: path.to_string(),
                    line: lexed.line_of(pos),
                    message: format!(
                        "`{word}` in ordering-sensitive scheduler code — iteration order \
                         feeds the deterministic wave schedule; use BTreeMap/BTreeSet"
                    ),
                    waived: false,
                });
            }
        }
    }
    findings
}

/// The interior-mutability / lock primitives the lock-order manifest tracks.
pub const LOCK_PRIMITIVES: [&str; 3] = ["Mutex", "RwLock", "RefCell"];

/// One use of a lock primitive in a file.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockUse {
    /// Relative path of the file.
    pub file: String,
    /// Primitive name (`Mutex`, `RwLock`, `RefCell`).
    pub primitive: String,
    /// First line the primitive appears on.
    pub line: usize,
}

/// Rule family 5 (collection half): every lock primitive a file mentions.
/// The engine cross-checks the collected set against `LOCK_ORDER.md`.
pub fn collect_lock_uses(path: &str, lexed: &LexedFile) -> Vec<LockUse> {
    let mut out = Vec::new();
    for primitive in LOCK_PRIMITIVES {
        if let Some(&pos) = word_occurrences(&lexed.masked, primitive).first() {
            out.push(LockUse {
                file: path.to_string(),
                primitive: primitive.to_string(),
                line: lexed.line_of(pos),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(src: &str) -> LexedFile {
        LexedFile::lex(src)
    }

    #[test]
    fn scope_classification() {
        assert_eq!(
            FileScope::of("crates/core/src/plan.rs"),
            FileScope::CrateSrc("core".into())
        );
        assert_eq!(
            FileScope::of("crates/bench/benches/rebalance.rs"),
            FileScope::CrateOther("bench".into())
        );
        assert_eq!(FileScope::of("tests/end_to_end.rs"), FileScope::Root);
    }

    #[test]
    fn layering_flags_upward_reach() {
        let lexed = lex("use dynahash_cluster::Cluster;\n");
        let scope = FileScope::CrateSrc("core".into());
        let f = layering_use("crates/core/src/bad.rs", &scope, &lexed);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::Layering);
    }

    #[test]
    fn layering_allows_downward_and_self() {
        let lexed = lex("use dynahash_lsm::Bytes;\nuse dynahash_core::Scheme;\n");
        let scope = FileScope::CrateSrc("cluster".into());
        assert!(layering_use("crates/cluster/src/ok.rs", &scope, &lexed).is_empty());
        let lexed = lex("use dynahash_bench::timing;\n");
        let scope = FileScope::CrateOther("bench".into());
        assert!(layering_use("crates/bench/benches/b.rs", &scope, &lexed).is_empty());
    }

    #[test]
    fn session_rule_requires_admin_in_statement() {
        let scope = FileScope::Root;
        let bad = lex("let p = cluster.partition(id);\n");
        assert_eq!(session_discipline("tests/t.rs", &scope, &bad).len(), 1);
        let good = lex("let p = cluster.admin().partition(id);\n");
        assert!(session_discipline("tests/t.rs", &scope, &good).is_empty());
        let bound = lex("let admin = cluster.admin();\nlet p = admin.partition(id);\n");
        assert!(session_discipline("tests/t.rs", &scope, &bound).is_empty());
    }

    #[test]
    fn session_rule_spares_session_ingest_flags_cluster_ingest() {
        let scope = FileScope::Root;
        let ok = lex("session.ingest(&mut cluster, records)?;\n");
        assert!(session_discipline("tests/t.rs", &scope, &ok).is_empty());
        let bad = lex("cluster.ingest(ds, records)?;\n");
        assert_eq!(session_discipline("tests/t.rs", &scope, &bad).len(), 1);
        let admin_ok = lex("cluster.admin().ingest(ds, records)?;\n");
        assert!(session_discipline("tests/t.rs", &scope, &admin_ok).is_empty());
    }

    #[test]
    fn session_rule_exempts_cluster_crate() {
        let scope = FileScope::CrateSrc("cluster".into());
        let src = lex("let p = self.cluster.partition(id);\n");
        assert!(session_discipline("crates/cluster/src/feed.rs", &scope, &src).is_empty());
    }

    #[test]
    fn panic_audit_fires_in_production_not_tests() {
        let scope = FileScope::CrateSrc("core".into());
        let src =
            lex("fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }\n");
        let f = panic_audit("crates/core/src/x.rs", &scope, &src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn panic_audit_only_covers_production_crates() {
        let scope = FileScope::CrateSrc("tpch".into());
        let src = lex("fn f() { x.unwrap(); }\n");
        assert!(panic_audit("crates/tpch/src/x.rs", &scope, &src).is_empty());
    }

    #[test]
    fn determinism_flags_instant_and_hashmap() {
        let src = lex("let t = std::time::Instant::now();\n");
        assert_eq!(determinism("crates/core/src/x.rs", &src).len(), 1);
        assert!(determinism(TIMING_MODULE, &src).is_empty());
        let src = lex("use std::collections::HashMap;\n");
        assert_eq!(determinism("crates/core/src/plan.rs", &src).len(), 1);
        assert!(determinism("crates/core/src/scheme.rs", &src).is_empty());
    }

    #[test]
    fn lock_uses_are_collected_once_per_primitive() {
        let src = lex("use std::sync::Mutex;\nstatic A: Mutex<u8> = Mutex::new(0);\n");
        let uses = collect_lock_uses("crates/cluster/src/x.rs", &src);
        assert_eq!(uses.len(), 1);
        assert_eq!(uses[0].primitive, "Mutex");
        assert_eq!(uses[0].line, 1);
    }
}
