//! Figures 7a/7b: rebalance time for removing and adding a node, plus the
//! wave-parallelism study of the step-driven executor (serial vs parallel
//! bucket movement).

use dynahash_bench::timing::{bench_case, bench_group, DEFAULT_ITERS};
use dynahash_bench::{
    fig7_rebalance, format_waves, rebalance_wave_scaling, ExperimentConfig, RebalanceDirection,
};

fn main() {
    let cfg = ExperimentConfig::quick();
    bench_group("fig7_rebalance");
    for (label, dir) in [
        ("remove_node", RebalanceDirection::RemoveNode),
        ("add_node", RebalanceDirection::AddNode),
    ] {
        bench_case(&format!("{label}/2_nodes"), DEFAULT_ITERS, || {
            fig7_rebalance(&cfg, &[2], dir)
        });
    }

    // Serial vs parallel wave movement: wall-clock per configuration, then
    // the simulated makespans — the parallel schedule must be strictly
    // faster in simulated time (it moves the same buckets in fewer,
    // barely-longer waves).
    bench_group("wave_parallelism");
    for moves_per_wave in [1usize, 4] {
        bench_case(
            &format!("dynahash_4to3/max_moves_{moves_per_wave}"),
            DEFAULT_ITERS,
            || rebalance_wave_scaling(&cfg, &[moves_per_wave]),
        );
    }
    let rows = rebalance_wave_scaling(&cfg, &[1, 4]);
    println!("simulated makespan (DynaHash LineItem, 4 -> 3 nodes):");
    print!("{}", format_waves(&rows));
    assert!(
        rows[1].minutes < rows[0].minutes,
        "parallel waves must beat the serial schedule in simulated time"
    );
}
