use dynahash_lsm::BucketId;

pub fn f(b: BucketId) -> BucketId {
    b
}
