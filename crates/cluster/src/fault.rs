//! The deterministic fault plane: seeded, replayable fault schedules
//! injected at the node/partition boundary.
//!
//! DynaHash's Section V-D enumerates the rebalance failure points; this
//! module turns them from terminal errors into *expected inputs*. A
//! [`FaultSchedule`] describes, as a pure function of a seed, which bucket
//! transfers fail transiently (and how often), which nodes run slow, and at
//! which wave a node crashes or is permanently lost. Because every decision
//! is derived from the seed — never from wall-clock time or ambient
//! randomness — a failing run replays exactly from its seed, the same
//! guarantee the soak fleet already gives for workload generation.
//!
//! The consumers are:
//!
//! * [`RebalanceJob::run_wave`](crate::job::RebalanceJob::run_wave) — each
//!   bucket transfer consults [`FaultSchedule::transient_failure`] per
//!   attempt and retries under the job's [`RetryPolicy`], charging capped
//!   exponential backoff to the wave's [`NodeTimeline`](crate::sim::NodeTimeline)
//!   so retries cost simulated makespan; slow nodes scale their charged
//!   durations by [`FaultSchedule::slow_factor`];
//! * the drivers (`rebalance::drive_job`, the soak runner) — between waves
//!   they take the scheduled [`WaveFault`] for the wave index just run and
//!   crash (+ recover) or permanently lose the named node, after which
//!   [`RebalanceJob::replan_wave`](crate::job::RebalanceJob::replan_wave)
//!   reroutes the dead node's moves to survivors;
//! * [`Admin::health`](crate::cluster::Admin::health) — surfaces the
//!   accumulated [`FaultStats`] plus per-node state and degraded datasets.
//!
//! With no schedule installed (or an empty one) every consumer takes the
//! exact code path it took before this module existed: the fault-free path
//! is byte-identical, which the `faults` experiments figure gates in CI.

use std::collections::BTreeMap;

use dynahash_core::{BucketId, NodeId, PartitionId};
use dynahash_lsm::rng::SplitMix64;

use crate::dataset::DatasetId;
use crate::sim::SimDuration;

// ---------------------------------------------------------------- retries

/// Bounded retries with capped exponential backoff for one bucket transfer.
///
/// Attempt `k` (zero-based) that fails transiently charges
/// `min(base_backoff << k, max_backoff)` of simulated wait to both endpoint
/// nodes before the next attempt, so absorbed faults still cost makespan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (so a transfer gets
    /// `max_retries + 1` attempts total).
    pub max_retries: u32,
    /// Backoff charged after the first transient failure.
    pub base_backoff: SimDuration,
    /// Ceiling on the per-attempt backoff.
    pub max_backoff: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_backoff: SimDuration::from_nanos(1_000_000),
            max_backoff: SimDuration::from_nanos(8_000_000),
        }
    }
}

impl RetryPolicy {
    /// The backoff charged after failed attempt `attempt` (zero-based):
    /// `base_backoff * 2^attempt`, capped at `max_backoff`.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let shifted = self
            .base_backoff
            .as_nanos()
            .saturating_shl(attempt.min(32))
            .max(self.base_backoff.as_nanos());
        SimDuration(shifted.min(self.max_backoff.as_nanos()))
    }
}

/// `u64::checked_shl` that saturates instead of wrapping.
trait SaturatingShl {
    fn saturating_shl(self, rhs: u32) -> u64;
}
impl SaturatingShl for u64 {
    fn saturating_shl(self, rhs: u32) -> u64 {
        self.checked_shl(rhs).unwrap_or(u64::MAX)
    }
}

// ------------------------------------------------------------ wave faults

/// A fault scheduled to fire after a specific rebalance wave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaveFault {
    /// Crash the node (it recovers: WAL replay, pending copies dropped).
    Crash(NodeId),
    /// Permanently lose the node: it never comes back, and
    /// [`RebalanceJob::replan_wave`](crate::job::RebalanceJob::replan_wave)
    /// must reroute its pending moves to survivors.
    Lose(NodeId),
}

// -------------------------------------------------------------- schedule

/// A seeded, replayable schedule of faults.
///
/// Transient-failure decisions are a *pure function* of
/// `(seed, bucket, from, to, attempt)` — the schedule keeps no mutable
/// state for them — so two runs with the same schedule see the same faults
/// regardless of interleaving. Wave faults are one-shot: drivers consume
/// them with [`FaultSchedule::take_wave_fault`] via the cluster.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    seed: u64,
    /// Per-mille probability that one transfer attempt fails transiently.
    transient_per_mille: u16,
    /// Hard cap on transient failures injected into one transfer; kept
    /// below the retry budget so every transient fault is absorbed.
    max_transient_per_transfer: u32,
    /// Nodes whose charged durations are scaled by the factor (> 1 = slow).
    slow_nodes: BTreeMap<NodeId, u32>,
    /// Wave index → fault fired (once) after that wave completes.
    wave_faults: BTreeMap<u64, WaveFault>,
}

impl FaultSchedule {
    /// An empty schedule: injects nothing, byte-identical behaviour to
    /// running with no schedule installed at all.
    pub fn none() -> Self {
        FaultSchedule::default()
    }

    /// A schedule whose transient decisions derive from `seed`.
    pub fn seeded(seed: u64) -> Self {
        FaultSchedule {
            seed,
            ..FaultSchedule::default()
        }
    }

    /// Enables transient ship failures: each transfer attempt fails with
    /// probability `per_mille`/1000, at most `max_per_transfer` times per
    /// transfer. Keep `max_per_transfer <= RetryPolicy::max_retries` so
    /// every transient fault is absorbed by retry instead of failing the
    /// wave.
    pub fn with_transient(mut self, per_mille: u16, max_per_transfer: u32) -> Self {
        self.transient_per_mille = per_mille.min(1000);
        self.max_transient_per_transfer = max_per_transfer;
        self
    }

    /// Marks `node` as slow: every duration charged to it during a transfer
    /// is multiplied by `factor`.
    pub fn with_slow_node(mut self, node: NodeId, factor: u32) -> Self {
        self.slow_nodes.insert(node, factor.max(1));
        self
    }

    /// Schedules `fault` to fire once, after wave `wave` completes.
    pub fn with_wave_fault(mut self, wave: u64, fault: WaveFault) -> Self {
        self.wave_faults.insert(wave, fault);
        self
    }

    /// True when the schedule injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.transient_per_mille == 0 && self.slow_nodes.is_empty() && self.wave_faults.is_empty()
    }

    /// Pure transient-failure decision for attempt `attempt` (zero-based)
    /// of shipping `bucket` from `from` to `to`. Attempts at or beyond the
    /// per-transfer cap never fail, so a capped schedule can always be
    /// absorbed by a retry budget of at least the cap.
    pub fn transient_failure(
        &self,
        bucket: BucketId,
        from: PartitionId,
        to: PartitionId,
        attempt: u32,
    ) -> bool {
        if self.transient_per_mille == 0 || attempt >= self.max_transient_per_transfer {
            return false;
        }
        let mix = self.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ ((bucket.bits as u64) << 32)
            ^ ((bucket.depth as u64) << 24)
            ^ ((from.0 as u64) << 12)
            ^ ((to.0 as u64) << 4)
            ^ attempt as u64;
        let mut rng = SplitMix64::seed_from_u64(mix);
        rng.gen_range(0..1000) < self.transient_per_mille as u64
    }

    /// The slow-down factor for `node` (1 = full speed).
    pub fn slow_factor(&self, node: NodeId) -> u32 {
        self.slow_nodes.get(&node).copied().unwrap_or(1)
    }

    /// Scales a charged duration by the node's slow-down factor.
    pub fn scaled(&self, node: NodeId, d: SimDuration) -> SimDuration {
        SimDuration(d.as_nanos().saturating_mul(self.slow_factor(node) as u64))
    }

    /// Removes and returns the fault scheduled after wave `wave`, if any
    /// (one-shot: a second take for the same wave returns `None`).
    pub fn take_wave_fault(&mut self, wave: u64) -> Option<WaveFault> {
        self.wave_faults.remove(&wave)
    }

    /// The scheduled-but-not-yet-fired wave faults (for drivers that want
    /// to know whether a loss is still coming).
    pub fn pending_wave_faults(&self) -> impl Iterator<Item = (&u64, &WaveFault)> {
        self.wave_faults.iter()
    }
}

// ----------------------------------------------------------------- stats

/// Counters the fault plane accumulates across jobs; surfaced by
/// [`Admin::health`](crate::cluster::Admin::health) and the soak report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transient ship failures injected (every one must be absorbed).
    pub transient_faults: u64,
    /// Transfer attempts re-tried after a transient failure.
    pub retries: u64,
    /// Total simulated backoff charged to retries.
    pub backoff: SimDuration,
    /// Bucket moves rerouted to a surviving node by `replan_wave`.
    pub reroutes: u64,
    /// Buckets re-shipped from a live source after their first destination
    /// was lost (the WAL's `ShippedMove` log names the components).
    pub reshipped: u64,
    /// Straggling transfers speculatively re-executed (a backup copy of the
    /// move was launched because the first attempt ran long past the wave's
    /// median leg).
    pub speculated: u64,
    /// Speculative backups that finished before the original attempt (the
    /// original's work was cancelled; the wave charged the winner's window).
    pub speculation_wins: u64,
    /// Lost buckets restored by a committed repair job, cumulative.
    pub repaired_buckets: u64,
    /// Nodes permanently lost (never recovered).
    pub lost_nodes: Vec<NodeId>,
    /// Buckets whose only copy died with a lost node, per dataset. Such a
    /// dataset keeps serving every other bucket (degraded mode); a committed
    /// [`repair`](crate::repair) job removes its buckets from this map.
    pub lost_buckets: BTreeMap<DatasetId, Vec<BucketId>>,
}

impl FaultStats {
    /// Datasets currently serving in degraded mode (at least one bucket
    /// lost with a dead node).
    pub fn degraded_datasets(&self) -> Vec<DatasetId> {
        self.lost_buckets.keys().copied().collect()
    }

    /// The lost bucket ids of one dataset, sorted (empty when healthy), so
    /// repair progress is observable bucket by bucket.
    pub fn degraded_buckets(&self, dataset: DatasetId) -> Vec<BucketId> {
        let mut buckets = self.lost_buckets.get(&dataset).cloned().unwrap_or_default();
        buckets.sort();
        buckets
    }
}

// ---------------------------------------------------------------- health

/// Liveness of one node, as reported by [`Admin::health`].
///
/// [`Admin::health`]: crate::cluster::Admin::health
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Serving normally.
    Alive,
    /// Crashed; recoverable via WAL replay.
    Crashed,
    /// Permanently lost; never returns.
    Lost,
}

/// The cluster health surface: per-node state plus the fault-plane
/// counters, so operators (and the chaos gates) can see degraded serving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterHealth {
    /// Every node currently in the topology, with its state (nodes already
    /// removed with `remove_lost_node` survive in `stats.lost_nodes`).
    pub nodes: Vec<(NodeId, NodeState)>,
    /// Accumulated fault-plane counters.
    pub stats: FaultStats,
    /// Progress of every in-flight rebalance job (% buckets moved, bytes
    /// shipped, ETA in sim-time, waves remaining), published by the job's
    /// steps and cleared at finalization.
    pub jobs: Vec<crate::control::JobProgress>,
}

impl ClusterHealth {
    /// True when every node is alive and no dataset is degraded.
    pub fn all_healthy(&self) -> bool {
        self.nodes.iter().all(|(_, s)| *s == NodeState::Alive) && self.stats.lost_buckets.is_empty()
    }

    /// Datasets serving without some of their buckets.
    pub fn degraded_datasets(&self) -> Vec<DatasetId> {
        self.stats.degraded_datasets()
    }

    /// Per-dataset lost bucket ids, sorted, so operators can watch a repair
    /// drain the list bucket by bucket.
    pub fn degraded_buckets(&self) -> Vec<(DatasetId, Vec<BucketId>)> {
        self.stats
            .lost_buckets
            .keys()
            .map(|&ds| (ds, self.stats.degraded_buckets(ds)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_decisions_are_pure_and_capped() {
        let b = BucketId { bits: 5, depth: 3 };
        let s = FaultSchedule::seeded(42).with_transient(1000, 2);
        // per-mille 1000 ⇒ every attempt under the cap fails …
        assert!(s.transient_failure(b, PartitionId(0), PartitionId(1), 0));
        assert!(s.transient_failure(b, PartitionId(0), PartitionId(1), 1));
        // … and the cap guarantees attempt 2 succeeds.
        assert!(!s.transient_failure(b, PartitionId(0), PartitionId(1), 2));
        // pure: same inputs, same answer
        let s2 = FaultSchedule::seeded(42).with_transient(1000, 2);
        assert_eq!(
            s.transient_failure(b, PartitionId(0), PartitionId(1), 0),
            s2.transient_failure(b, PartitionId(0), PartitionId(1), 0)
        );
        // a different seed flips some decisions eventually
        let s3 = FaultSchedule::seeded(7).with_transient(500, 4);
        let flips = (0u32..4)
            .filter(|&a| s3.transient_failure(b, PartitionId(0), PartitionId(1), a))
            .count();
        assert!(flips < 4, "per-mille 500 cannot fail every attempt");
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(0), SimDuration::from_nanos(1_000_000));
        assert_eq!(p.backoff(1), SimDuration::from_nanos(2_000_000));
        assert_eq!(p.backoff(2), SimDuration::from_nanos(4_000_000));
        assert_eq!(p.backoff(3), SimDuration::from_nanos(8_000_000));
        assert_eq!(p.backoff(10), p.max_backoff, "capped");
        assert_eq!(p.backoff(63), p.max_backoff, "shift overflow saturates");
    }

    #[test]
    fn wave_faults_are_one_shot() {
        let n = NodeId(3);
        let mut s = FaultSchedule::seeded(1).with_wave_fault(2, WaveFault::Lose(n));
        assert!(!s.is_empty());
        assert_eq!(s.take_wave_fault(0), None);
        assert_eq!(s.take_wave_fault(2), Some(WaveFault::Lose(n)));
        assert_eq!(s.take_wave_fault(2), None, "one-shot");
    }

    #[test]
    fn empty_schedule_injects_nothing() {
        let s = FaultSchedule::none();
        assert!(s.is_empty());
        let b = BucketId { bits: 0, depth: 0 };
        assert!(!s.transient_failure(b, PartitionId(0), PartitionId(1), 0));
        assert_eq!(s.slow_factor(NodeId(0)), 1);
        assert_eq!(
            s.scaled(NodeId(0), SimDuration::from_nanos(10)),
            SimDuration::from_nanos(10)
        );
    }

    #[test]
    fn slow_factor_scales_durations() {
        let s = FaultSchedule::seeded(9).with_slow_node(NodeId(1), 3);
        assert_eq!(
            s.scaled(NodeId(1), SimDuration::from_nanos(100)),
            SimDuration::from_nanos(300)
        );
        assert_eq!(
            s.scaled(NodeId(2), SimDuration::from_nanos(100)),
            SimDuration::from_nanos(100)
        );
    }
}
