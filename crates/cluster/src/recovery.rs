//! Fault tolerance and recovery (Section V-D).
//!
//! Node and Cluster Controller failures during a rebalance are injected
//! through [`crate::rebalance::RebalanceOptions::with_failure`] (which the
//! one-shot driver translates into crashes between the steps of the
//! [`crate::job::RebalanceJob`] state machine), or directly by scenario code
//! driving a job step-by-step. This module adds the cluster-level
//! crash/recover entry points and a recovery report, and hosts the tests
//! that walk through the paper's six failure cases.

use dynahash_core::NodeId;
use dynahash_lsm::wal::{RebalanceId, RebalanceLogStatus};

use crate::cluster::Cluster;
use crate::{ClusterError, Result};

/// What recovery found and did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Nodes that were down and have been brought back.
    pub recovered_nodes: Vec<NodeId>,
    /// Rebalance operations found in-flight in the metadata log and aborted.
    pub aborted_rebalances: Vec<RebalanceId>,
    /// Rebalance operations found committed-but-not-done and re-driven.
    pub redriven_rebalances: Vec<RebalanceId>,
}

impl Cluster {
    /// Crashes a node (its unforced log records are lost; it stops serving).
    pub fn crash_node(&mut self, node: NodeId) -> Result<()> {
        self.node_mut(node)?.crash();
        Ok(())
    }

    /// Recovers a node. Upon recovery the NC registers with the CC; any
    /// pending rebalance instructions are handled by the rebalance executor.
    /// A permanently lost node is not recoverable.
    pub fn recover_node(&mut self, node: NodeId) -> Result<()> {
        let nc = self.node_mut(node)?;
        if nc.is_lost() {
            return Err(ClusterError::NodeLost(node));
        }
        nc.recover();
        Ok(())
    }

    /// Permanently loses a node: it crashes and never comes back. In-flight
    /// rebalance jobs must [`replan_wave`](crate::job::RebalanceJob::replan_wave)
    /// around it; once no dataset's directory references its partitions it
    /// can be removed with [`Cluster::remove_lost_node`].
    pub fn lose_node(&mut self, node: NodeId) -> Result<()> {
        self.node_mut(node)?.mark_lost();
        self.faults.stats.lost_nodes.push(node);
        // Buckets whose only copy lived on this node are degraded from this
        // moment: every bucket the CC directory routes to its partitions,
        // minus buckets whose shipped pending copy survives on an alive
        // destination of an in-flight rebalance (the replan re-drives those
        // to commit). A mid-job replan records the same set; the dedup push
        // makes the double-record a no-op.
        let partitions = self.topology().partitions_of_node(node);
        let mut newly_lost: Vec<(crate::dataset::DatasetId, dynahash_core::BucketId)> = Vec::new();
        for dataset in self.controller.dataset_ids() {
            let Ok(meta) = self.controller.dataset(dataset) else {
                continue;
            };
            let Some(dir) = meta.directory.as_ref() else {
                continue;
            };
            for (bucket, partition) in dir.iter() {
                if !partitions.contains(&partition) {
                    continue;
                }
                let survives = self.active_rebalances.get(&dataset).is_some_and(|active| {
                    active.shipped.get(&bucket).is_some_and(|dst| {
                        active
                            .target
                            .node_of(*dst)
                            .is_some_and(|n| n != node && self.node_is_alive(n))
                    })
                });
                if !survives {
                    newly_lost.push((dataset, bucket));
                }
            }
        }
        for (dataset, bucket) in newly_lost {
            let lost = self.faults.stats.lost_buckets.entry(dataset).or_default();
            if !lost.contains(&bucket) {
                lost.push(bucket);
            }
        }
        Ok(())
    }

    /// True if the node is currently up.
    pub fn node_is_alive(&self, node: NodeId) -> bool {
        self.node(node).map(|n| n.is_alive()).unwrap_or(false)
    }

    /// True if the node is permanently lost.
    pub fn node_is_lost(&self, node: NodeId) -> bool {
        self.node(node).map(|n| n.is_lost()).unwrap_or(false)
    }

    /// Recovers every crashed node (permanently lost nodes stay down). Used
    /// by the rebalance finalization step (recovered NCs re-run their
    /// idempotent commit or cleanup tasks) and available to scenarios
    /// driving a job step-by-step.
    pub fn recover_all_nodes(&mut self) {
        let nodes: Vec<NodeId> = self.topology().nodes();
        for n in nodes {
            if let Ok(nc) = self.node_mut(n) {
                if !nc.is_alive() && !nc.is_lost() {
                    nc.recover();
                }
            }
        }
    }

    /// Crashes and immediately recovers the Cluster Controller, then scans
    /// the metadata log to classify every rebalance operation, mirroring the
    /// recovery rules of Section V-D. (The rebalance executor performs the
    /// same classification inline when a failure is injected; this entry
    /// point lets tests and operators run it explicitly.)
    pub fn restart_controller(&mut self) -> RecoveryReport {
        self.controller.crash();
        self.controller.recover();
        let mut aborted = Vec::new();
        let mut redriven = Vec::new();
        // Rebalance ids are dense and small; scan the ones we may have issued.
        for id in 1..=64u64 {
            match self.controller.metadata_log.rebalance_status(id) {
                RebalanceLogStatus::InFlight => aborted.push(id),
                RebalanceLogStatus::CommittedNotDone => redriven.push(id),
                _ => {}
            }
        }
        let recovered: Vec<NodeId> = self
            .topology()
            .nodes()
            .into_iter()
            .filter(|n| !self.node_is_alive(*n) && !self.node_is_lost(*n))
            .collect();
        for n in &recovered {
            let _ = self.recover_node(*n);
        }
        RecoveryReport {
            recovered_nodes: recovered,
            aborted_rebalances: aborted,
            redriven_rebalances: redriven,
        }
    }
}

impl From<ClusterError> for std::io::Error {
    fn from(e: ClusterError) -> Self {
        std::io::Error::other(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetSpec;
    use crate::rebalance::RebalanceOptions;
    use dynahash_core::{FailurePoint, RebalanceOutcome, Scheme};
    use dynahash_lsm::entry::Key;
    use dynahash_lsm::Bytes;

    fn loaded(nodes: u32) -> (Cluster, crate::DatasetId) {
        let mut cluster = Cluster::with_config(
            nodes,
            crate::ClusterConfig {
                partitions_per_node: 2,
                cost_model: crate::CostModel::default(),
            },
        );
        let ds = cluster
            .create_dataset(DatasetSpec::new(
                "orders",
                Scheme::StaticHash { num_buckets: 16 },
            ))
            .unwrap();
        let records: Vec<(Key, Bytes)> = (0..1200u64)
            .map(|i| (Key::from_u64(i), Bytes::from(vec![(i % 250) as u8; 48])))
            .collect();
        cluster.ingest(ds, records).unwrap();
        (cluster, ds)
    }

    fn scale_out_with_failure(
        failure: FailurePoint,
    ) -> (Cluster, crate::DatasetId, RebalanceOutcome) {
        let (mut cluster, ds) = loaded(2);
        cluster.add_node().unwrap();
        let target = cluster.topology().clone();
        let report = cluster
            .rebalance(ds, &target, RebalanceOptions::none().with_failure(failure))
            .unwrap();
        let outcome = report.outcome;
        (cluster, ds, outcome)
    }

    #[test]
    fn case1_nc_fails_before_prepared_aborts_and_leaves_dataset_intact() {
        let (cluster, ds, outcome) =
            scale_out_with_failure(FailurePoint::NcBeforePrepared(NodeId(2)));
        assert_eq!(outcome, RebalanceOutcome::Aborted);
        assert_eq!(cluster.dataset_len(ds).unwrap(), 1200);
        cluster.check_dataset_consistency(ds).unwrap();
        // nothing landed on the new node
        let on_new: usize = cluster
            .topology()
            .partitions_of_node(NodeId(2))
            .iter()
            .map(|p| {
                cluster
                    .partition(*p)
                    .unwrap()
                    .dataset(ds)
                    .unwrap()
                    .live_len()
            })
            .sum();
        assert_eq!(on_new, 0);
    }

    #[test]
    fn case2_nc_fails_after_prepared_still_commits() {
        let (cluster, ds, outcome) =
            scale_out_with_failure(FailurePoint::NcAfterPrepared(NodeId(2)));
        assert_eq!(outcome, RebalanceOutcome::Committed);
        assert_eq!(cluster.dataset_len(ds).unwrap(), 1200);
        cluster.check_dataset_consistency(ds).unwrap();
    }

    #[test]
    fn case3_cc_fails_before_commit_log_aborts() {
        let (cluster, ds, outcome) = scale_out_with_failure(FailurePoint::CcBeforeCommitLog);
        assert_eq!(outcome, RebalanceOutcome::Aborted);
        assert_eq!(cluster.dataset_len(ds).unwrap(), 1200);
        cluster.check_dataset_consistency(ds).unwrap();
    }

    #[test]
    fn case4_nc_fails_before_committed_ack_commits_after_recovery() {
        let (cluster, ds, outcome) =
            scale_out_with_failure(FailurePoint::NcBeforeCommitted(NodeId(0)));
        assert_eq!(outcome, RebalanceOutcome::Committed);
        assert_eq!(cluster.dataset_len(ds).unwrap(), 1200);
        cluster.check_dataset_consistency(ds).unwrap();
        assert!(cluster.node_is_alive(NodeId(0)));
    }

    #[test]
    fn case5_cc_fails_after_commit_before_done_commits() {
        let (cluster, ds, outcome) = scale_out_with_failure(FailurePoint::CcAfterCommitBeforeDone);
        assert_eq!(outcome, RebalanceOutcome::Committed);
        assert_eq!(cluster.dataset_len(ds).unwrap(), 1200);
        cluster.check_dataset_consistency(ds).unwrap();
    }

    #[test]
    fn case6_cc_fails_after_done_is_a_noop() {
        let (cluster, ds, outcome) = scale_out_with_failure(FailurePoint::CcAfterDone);
        assert_eq!(outcome, RebalanceOutcome::Committed);
        assert_eq!(cluster.dataset_len(ds).unwrap(), 1200);
        cluster.check_dataset_consistency(ds).unwrap();
    }

    #[test]
    fn crash_and_recover_node_roundtrip() {
        let (mut cluster, _ds) = loaded(2);
        cluster.crash_node(NodeId(1)).unwrap();
        assert!(!cluster.node_is_alive(NodeId(1)));
        let report = cluster.restart_controller();
        assert_eq!(report.recovered_nodes, vec![NodeId(1)]);
        assert!(cluster.node_is_alive(NodeId(1)));
        assert!(report.aborted_rebalances.is_empty());
    }

    #[test]
    fn ingest_into_downed_node_fails() {
        let (mut cluster, ds) = loaded(2);
        cluster.crash_node(NodeId(0)).unwrap();
        let err = cluster.ingest(ds, vec![(Key::from_u64(50_000), Bytes::from_static(b"x"))]);
        // the record may route to node 0 (down) or node 1 (up); if it routes
        // to the downed node the feed fails with NodeDown
        if let Err(e) = err {
            assert!(matches!(e, ClusterError::NodeDown(_)));
        }
        cluster.recover_node(NodeId(0)).unwrap();
    }
}
