//! A minimal comment- and string-aware Rust lexer.
//!
//! The rule engine does not need a real parse tree; it needs to answer three
//! questions about a source file reliably:
//!
//! 1. *Is this byte code, or is it inside a comment / string literal?*
//!    Rules must not fire on `".unwrap()"` appearing in a doc comment or a
//!    string. [`LexedFile::masked`] is the file with every comment and
//!    literal body replaced by spaces — same byte length, same line
//!    structure, so byte offsets and line numbers carry over.
//! 2. *What line comments does the file carry, and where?* Waivers
//!    (`// dhlint: allow(rule) — reason`) live in line comments
//!    ([`LexedFile::comments`]).
//! 3. *Which lines belong to `#[cfg(test)]` items?* The panic-audit rule
//!    only covers production code ([`LexedFile::is_test_line`]).
//!
//! The lexer understands line comments, nested block comments, string
//! literals (including byte strings and raw strings with any number of `#`
//! marks), char literals, and the char-vs-lifetime ambiguity (`'a'` versus
//! `'a`). It deliberately does not tokenize beyond that.

/// A line comment found in the source.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Comment text including the leading `//`.
    pub text: String,
    /// True when the line holds nothing but the comment (no code before it).
    pub own_line: bool,
}

/// The result of lexing one source file.
#[derive(Debug)]
pub struct LexedFile {
    /// The source with comments and literal bodies blanked out by spaces.
    /// Identical byte length and newline positions to the original.
    pub masked: String,
    /// Byte offset of the start of each line (index 0 = line 1).
    line_starts: Vec<usize>,
    /// All line comments, in order.
    pub comments: Vec<Comment>,
    /// `lines_test[i]` is true when 1-based line `i + 1` is inside a
    /// `#[cfg(test)]` item.
    lines_test: Vec<bool>,
}

impl LexedFile {
    /// Lexes `source` into a masked view plus comment and test-region maps.
    pub fn lex(source: &str) -> LexedFile {
        let bytes = source.as_bytes();
        let mut masked = source.as_bytes().to_vec();
        let mut comments = Vec::new();

        let mut i = 0usize;
        while i < bytes.len() {
            let b = bytes[i];
            match b {
                b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                    let start = i;
                    while i < bytes.len() && bytes[i] != b'\n' {
                        masked[i] = b' ';
                        i += 1;
                    }
                    let line = line_of_offset_raw(bytes, start);
                    let own_line = bytes[..start]
                        .iter()
                        .rev()
                        .take_while(|&&c| c != b'\n')
                        .all(|&c| c == b' ' || c == b'\t');
                    comments.push(Comment {
                        line,
                        text: source[start..i].to_string(),
                        own_line,
                    });
                }
                b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                    let mut depth = 1usize;
                    masked[i] = b' ';
                    masked[i + 1] = b' ';
                    i += 2;
                    while i < bytes.len() && depth > 0 {
                        if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                            depth += 1;
                            masked[i] = b' ';
                            masked[i + 1] = b' ';
                            i += 2;
                        } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                            depth -= 1;
                            masked[i] = b' ';
                            masked[i + 1] = b' ';
                            i += 2;
                        } else {
                            if bytes[i] != b'\n' {
                                masked[i] = b' ';
                            }
                            i += 1;
                        }
                    }
                }
                b'"' => i = mask_string(bytes, &mut masked, i),
                b'r' | b'b' => {
                    if let Some(next) = raw_or_byte_literal(bytes, &mut masked, i) {
                        // Keep the prefix bytes (`r`, `b`, `#`s) visible; the
                        // literal body itself is blanked by the helper.
                        i = next;
                    } else {
                        i += 1;
                    }
                }
                b'\'' => i = mask_char_or_lifetime(bytes, &mut masked, i),
                _ => i += 1,
            }
        }

        let masked = String::from_utf8_lossy(&masked).into_owned();
        let line_starts = compute_line_starts(&masked);
        let lines_test = mark_test_lines(&masked, &line_starts);
        LexedFile {
            masked,
            line_starts,
            comments,
            lines_test,
        }
    }

    /// Maps a byte offset in [`Self::masked`] to a 1-based line number.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(idx) => idx + 1,
            Err(idx) => idx,
        }
    }

    /// True when the given 1-based line lies inside a `#[cfg(test)]` item.
    pub fn is_test_line(&self, line: usize) -> bool {
        line >= 1 && self.lines_test.get(line - 1).copied().unwrap_or(false)
    }

    /// The masked text of the given 1-based line.
    pub fn masked_line(&self, line: usize) -> &str {
        if line == 0 || line > self.line_starts.len() {
            return "";
        }
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .copied()
            .unwrap_or(self.masked.len());
        self.masked[start..end].trim_end_matches('\n')
    }

    /// Number of lines in the file.
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }
}

/// Masks a regular (escaped) string literal starting at the opening quote.
/// Returns the offset just past the closing quote.
fn mask_string(bytes: &[u8], masked: &mut [u8], start: usize) -> usize {
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if i + 1 < bytes.len() => {
                masked[i] = b' ';
                if bytes[i + 1] != b'\n' {
                    masked[i + 1] = b' ';
                }
                i += 2;
            }
            b'"' => return i + 1,
            b'\n' => i += 1,
            _ => {
                masked[i] = b' ';
                i += 1;
            }
        }
    }
    i
}

/// Recognizes raw strings (`r"…"`, `r#"…"#`), byte strings (`b"…"`), and raw
/// byte strings (`br#"…"#`) starting at `start`. Masks the body and returns
/// the offset past the literal, or `None` when `start` is just an identifier
/// beginning with `r`/`b`.
fn raw_or_byte_literal(bytes: &[u8], masked: &mut [u8], start: usize) -> Option<usize> {
    // Bail out when the r/b is part of a longer identifier (`break`, `row`).
    if start > 0 {
        let prev = bytes[start - 1];
        if prev.is_ascii_alphanumeric() || prev == b'_' {
            return None;
        }
    }
    let mut i = start;
    if bytes[i] == b'b' {
        i += 1;
        if i < bytes.len() && bytes[i] == b'\'' {
            // byte char literal b'x'
            let end = skip_char_body(bytes, i);
            for k in (i + 1)..end.min(bytes.len()) {
                if bytes[k] != b'\n' {
                    masked[k] = b' ';
                }
            }
            return Some(end);
        }
    }
    let raw = i < bytes.len() && bytes[i] == b'r';
    if raw {
        i += 1;
    }
    let mut hashes = 0usize;
    while raw && i < bytes.len() && bytes[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i >= bytes.len() || bytes[i] != b'"' {
        return None;
    }
    if !raw {
        // plain byte string b"…": same escape rules as a normal string; the
        // caller masks from the quote.
        return Some(i); // let the main loop handle the quote next
    }
    // raw string: scan for `"` followed by `hashes` `#`s, blanking the body.
    let body_start = i + 1;
    i += 1;
    let end = loop {
        if i >= bytes.len() {
            break i;
        }
        if bytes[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while j < bytes.len() && bytes[j] == b'#' && seen < hashes {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                break j;
            }
        }
        i += 1;
    };
    for k in body_start..end.min(bytes.len()) {
        if bytes[k] != b'\n' {
            masked[k] = b' ';
        }
    }
    Some(end)
}

/// Distinguishes a char literal from a lifetime at a `'`. Masks char bodies;
/// leaves lifetimes untouched. Returns the offset to continue from.
fn mask_char_or_lifetime(bytes: &[u8], masked: &mut [u8], start: usize) -> usize {
    let i = start + 1;
    if i >= bytes.len() {
        return i;
    }
    if bytes[i] == b'\\' {
        // escaped char literal '\n', '\'', '\u{…}': blank the body.
        let end = skip_char_body(bytes, start);
        for (off, m) in masked.iter_mut().enumerate().take(end).skip(start + 1) {
            if bytes[off] != b'\n' && bytes[off] != b'\'' {
                *m = b' ';
            }
        }
        return end;
    }
    // 'X' (single char then closing quote) is a char literal; anything else
    // ('a as a lifetime, '_, 'static) is left alone.
    let char_len = utf8_len(bytes[i]);
    let close = i + char_len;
    if close < bytes.len() && bytes[close] == b'\'' {
        for m in masked.iter_mut().take(close).skip(i) {
            *m = b' ';
        }
        return close + 1;
    }
    i
}

/// Skips past a (possibly escaped) char literal starting at the opening `'`.
fn skip_char_body(bytes: &[u8], start: usize) -> usize {
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            b'\n' => return i, // malformed; don't run away
            _ => i += 1,
        }
    }
    i
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn compute_line_starts(s: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in s.bytes().enumerate() {
        if b == b'\n' && i + 1 < s.len() {
            starts.push(i + 1);
        }
    }
    starts
}

fn line_of_offset_raw(bytes: &[u8], offset: usize) -> usize {
    bytes[..offset].iter().filter(|&&b| b == b'\n').count() + 1
}

/// Marks every line belonging to a `#[cfg(test)]` item. The attribute is
/// located in the masked text (so strings can't fake it); the item extent is
/// the following brace-balanced block, or up to the terminating `;` for
/// non-block items like `#[cfg(test)] use …;`.
fn mark_test_lines(masked: &str, line_starts: &[usize]) -> Vec<bool> {
    let mut test = vec![false; line_starts.len()];
    let bytes = masked.as_bytes();
    let needle = b"#[cfg(test)]";
    let mut from = 0usize;
    while let Some(pos) = find_from(bytes, needle, from) {
        from = pos + needle.len();
        let mut i = pos + needle.len();
        // Skip whitespace and any further attributes.
        loop {
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if i < bytes.len() && bytes[i] == b'#' {
                // skip `#[ … ]` with bracket matching
                let mut depth = 0usize;
                while i < bytes.len() {
                    match bytes[i] {
                        b'[' => depth += 1,
                        b']' => {
                            depth -= 1;
                            if depth == 0 {
                                i += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            } else {
                break;
            }
        }
        // Scan to the end of the item: a `{ … }` block or a `;`.
        let item_start = pos;
        let mut end = i;
        let mut depth = 0usize;
        while end < bytes.len() {
            match bytes[end] {
                b'{' => depth += 1,
                b'}' if depth > 0 => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                b';' if depth == 0 => break,
                _ => {}
            }
            end += 1;
        }
        let first = line_index(line_starts, item_start);
        let last = line_index(line_starts, end.min(bytes.len().saturating_sub(1)));
        for t in test.iter_mut().take(last + 1).skip(first) {
            *t = true;
        }
    }
    test
}

fn line_index(line_starts: &[usize], offset: usize) -> usize {
    match line_starts.binary_search(&offset) {
        Ok(idx) => idx,
        Err(idx) => idx - 1,
    }
}

/// Finds `needle` in `haystack` at or after `from`.
pub fn find_from(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if needle.is_empty() || from >= haystack.len() {
        return None;
    }
    haystack[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_masked() {
        let src = "let a = \"x.unwrap()\"; // trailing .expect(\nlet b = 1;\n";
        let lexed = LexedFile::lex(src);
        assert!(!lexed.masked.contains("unwrap"));
        assert!(!lexed.masked.contains("expect"));
        assert_eq!(lexed.comments.len(), 1);
        assert!(!lexed.comments[0].own_line);
        assert!(lexed.comments[0].text.contains(".expect("));
    }

    #[test]
    fn raw_strings_are_masked() {
        let src = "let a = r#\"panic!(\"no\")\"#;\nlet b = br\"x\";\n";
        let lexed = LexedFile::lex(src);
        assert!(!lexed.masked.contains("panic"));
    }

    #[test]
    fn block_comments_nest() {
        let src = "/* outer /* inner */ still.unwrap() */ let x = 1;\n";
        let lexed = LexedFile::lex(src);
        assert!(!lexed.masked.contains("unwrap"));
        assert!(lexed.masked.contains("let x = 1;"));
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let src = "fn f<'a>(x: &'a str) { let c = 'y'; let d = '\\n'; }\n";
        let lexed = LexedFile::lex(src);
        assert!(lexed.masked.contains("<'a>"));
        assert!(!lexed.masked.contains('y'));
    }

    #[test]
    fn cfg_test_regions_cover_the_module() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn prod2() {}\n";
        let lexed = LexedFile::lex(src);
        assert!(!lexed.is_test_line(1));
        assert!(lexed.is_test_line(2));
        assert!(lexed.is_test_line(4));
        assert!(lexed.is_test_line(5));
        assert!(!lexed.is_test_line(6));
    }

    #[test]
    fn cfg_test_on_statement_items_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn prod() {}\n";
        let lexed = LexedFile::lex(src);
        assert!(lexed.is_test_line(2));
        assert!(!lexed.is_test_line(3));
    }
}
