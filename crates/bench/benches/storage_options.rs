//! Ablation A1: the cost of moving a bucket under the storage options of
//! Section IV (single LSM-tree vs. bucketed LSM-trees).

use dynahash_bench::ablation_storage_options;
use dynahash_bench::timing::{bench_case, bench_group, DEFAULT_ITERS};

fn main() {
    bench_group("ablation_storage_options");
    for records in [1_000u64, 5_000] {
        bench_case(&format!("records/{records}"), DEFAULT_ITERS, || {
            ablation_storage_options(records)
        });
    }
}
