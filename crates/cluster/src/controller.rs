//! The Cluster Controller (CC).
//!
//! The CC is the coordinator of the cluster: it owns the dataset metadata
//! (including each bucketed dataset's global directory), produces metadata
//! log records (`BEGIN` / `COMMIT` / `DONE` of rebalance operations), and
//! drives rebalance operations. Queries and data feeds take an immutable copy
//! of the global directory from the CC when they start.

use std::collections::BTreeMap;

use dynahash_core::{CoreError, GlobalDirectory, PartitionId, Scheme};
use dynahash_lsm::wal::{RebalanceId, TransactionLog};

use crate::dataset::{DatasetId, DatasetMeta, DatasetSpec};
use crate::ClusterError;

/// The Cluster Controller's state.
pub struct ClusterController {
    datasets: BTreeMap<DatasetId, DatasetMeta>,
    next_dataset_id: DatasetId,
    next_rebalance_id: RebalanceId,
    /// The CC's metadata transaction log.
    pub metadata_log: TransactionLog,
    alive: bool,
}

impl std::fmt::Debug for ClusterController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterController")
            .field("datasets", &self.datasets.len())
            .field("alive", &self.alive)
            .finish()
    }
}

impl Default for ClusterController {
    fn default() -> Self {
        Self::new()
    }
}

impl ClusterController {
    /// Creates an empty controller.
    pub fn new() -> Self {
        ClusterController {
            datasets: BTreeMap::new(),
            next_dataset_id: 1,
            next_rebalance_id: 1,
            metadata_log: TransactionLog::new(),
            alive: true,
        }
    }

    /// Registers a dataset spread over the given partitions, building the
    /// initial global directory for bucketed schemes.
    pub fn register_dataset(
        &mut self,
        spec: DatasetSpec,
        partitions: Vec<PartitionId>,
    ) -> Result<DatasetId, ClusterError> {
        let id = self.next_dataset_id;
        self.next_dataset_id += 1;
        let directory = match spec.scheme.initial_depth() {
            Some(depth) => {
                Some(GlobalDirectory::initial(depth, &partitions).map_err(ClusterError::Core)?)
            }
            None => None,
        };
        self.datasets.insert(
            id,
            DatasetMeta {
                id,
                spec,
                directory,
                partitions,
                partitions_version: 1,
            },
        );
        Ok(id)
    }

    /// The current routing version of a dataset: what a partition echoes in
    /// a stale-directory rejection, and what client sessions compare their
    /// cached snapshot against.
    pub fn routing_version(&self, id: DatasetId) -> Result<u64, ClusterError> {
        Ok(self.dataset(id)?.routing_version())
    }

    /// Dataset metadata.
    pub fn dataset(&self, id: DatasetId) -> Result<&DatasetMeta, ClusterError> {
        self.datasets
            .get(&id)
            .ok_or(ClusterError::UnknownDataset(id))
    }

    /// Mutable dataset metadata (used by rebalance commit to swap the
    /// directory and partition list).
    pub fn dataset_mut(&mut self, id: DatasetId) -> Result<&mut DatasetMeta, ClusterError> {
        self.datasets
            .get_mut(&id)
            .ok_or(ClusterError::UnknownDataset(id))
    }

    /// All registered dataset ids.
    pub fn dataset_ids(&self) -> Vec<DatasetId> {
        self.datasets.keys().copied().collect()
    }

    /// An immutable copy of a dataset's routing state, as taken by queries
    /// and data feeds at job start (Section III).
    pub fn routing_snapshot(&self, id: DatasetId) -> Result<DatasetMeta, ClusterError> {
        self.dataset(id).cloned()
    }

    /// Allocates the id of a new rebalance operation.
    pub fn next_rebalance_id(&mut self) -> RebalanceId {
        let id = self.next_rebalance_id;
        self.next_rebalance_id += 1;
        id
    }

    /// True if the CC is up.
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// Simulates a CC crash: non-durable metadata log records are lost.
    pub fn crash(&mut self) {
        self.alive = false;
        self.metadata_log.crash();
    }

    /// Recovers the CC. Pending rebalance operations are resolved by the
    /// rebalance recovery logic using [`TransactionLog::rebalance_status`].
    pub fn recover(&mut self) {
        self.alive = true;
    }

    /// Convenience check used before scheme-specific operations.
    pub fn scheme_of(&self, id: DatasetId) -> Result<Scheme, ClusterError> {
        Ok(self.dataset(id)?.spec.scheme)
    }
}

impl From<CoreError> for ClusterError {
    fn from(e: CoreError) -> Self {
        ClusterError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_bucketed_dataset_builds_directory() {
        let mut cc = ClusterController::new();
        let parts: Vec<PartitionId> = (0..8).map(PartitionId).collect();
        let id = cc
            .register_dataset(
                DatasetSpec::new("orders", Scheme::static_hash_256()),
                parts.clone(),
            )
            .unwrap();
        let meta = cc.dataset(id).unwrap();
        assert!(meta.is_bucketed());
        let dir = meta.directory.as_ref().unwrap();
        assert_eq!(dir.num_buckets(), 256);
        assert!(dir.covers_full_space());
        assert_eq!(meta.partitions, parts);
    }

    #[test]
    fn register_hashing_dataset_has_no_directory() {
        let mut cc = ClusterController::new();
        let id = cc
            .register_dataset(
                DatasetSpec::new("orders", Scheme::Hashing),
                vec![PartitionId(0), PartitionId(1)],
            )
            .unwrap();
        assert!(!cc.dataset(id).unwrap().is_bucketed());
        assert!(cc.dataset(99).is_err());
    }

    #[test]
    fn rebalance_ids_are_unique_and_increasing() {
        let mut cc = ClusterController::new();
        let a = cc.next_rebalance_id();
        let b = cc.next_rebalance_id();
        assert!(b > a);
    }

    #[test]
    fn routing_snapshot_is_a_copy() {
        let mut cc = ClusterController::new();
        let id = cc
            .register_dataset(
                DatasetSpec::new("o", Scheme::dynahash(1 << 20, 4)),
                (0..4).map(PartitionId).collect(),
            )
            .unwrap();
        let snap = cc.routing_snapshot(id).unwrap();
        // mutate the CC's copy; the snapshot must be unaffected
        cc.dataset_mut(id).unwrap().partitions.clear();
        assert_eq!(snap.partitions.len(), 4);
    }
}
