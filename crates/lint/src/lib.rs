//! `dhlint` — in-tree static analysis for the DynaHash workspace.
//!
//! The repository's correctness story rests on invariants that, before this
//! crate, were enforced only by convention. `dhlint` turns each one into a
//! mechanical, CI-gated check:
//!
//! * **layering** — `lsm ← core ← cluster ← {tpch, bench}`, verified from
//!   both `Cargo.toml` path dependencies and `dynahash_*` references in
//!   source, plus a hard error on any registry dependency (the workspace is
//!   zero-dependency/offline by construction);
//! * **session discipline** — outside `crates/cluster`, the demoted raw
//!   accessors (`partition`, `partition_mut`, `route_key`, raw `ingest`)
//!   must be reached through the `cluster.admin()` escape hatch;
//! * **panic audit** — `unwrap()` / `expect()` / `panic!` / `unreachable!`
//!   in the production crates (`core`, `cluster`, `lsm`) must carry a
//!   waiver naming the invariant that makes the site unreachable;
//! * **determinism** — wall-clock reads (`SystemTime`, `Instant`) are
//!   confined to `dynahash_bench::timing`, and the files feeding the
//!   deterministic wave scheduler must not iterate `HashMap`/`HashSet`;
//! * **lock-order readiness** — every `Mutex`/`RwLock`/`RefCell` must be
//!   registered with an acquisition rank in `LOCK_ORDER.md`, so the
//!   upcoming real-thread runtime inherits a machine-checked lock
//!   hierarchy from day one.
//!
//! Findings are waived inline with
//! `// dhlint: allow(<rule>) — <reason>` and the number of used waivers per
//! rule is pinned by the committed `LINT_BUDGET.toml`, which only ratchets
//! down. Run it as:
//!
//! ```text
//! cargo run --release -p dynahash-lint -- --check .
//! ```
//!
//! Like everything else in the workspace, the crate has zero external
//! dependencies: the lexer, rule engine, TOML subset reader, and JSON
//! writer are all in-tree.

pub mod engine;
pub mod lexer;
pub mod manifest;
pub mod report;
pub mod rules;
pub mod waivers;

pub use engine::{check_root, check_source, BUDGET_FILE, LOCK_ORDER_FILE};
pub use report::{Finding, Report, Rule};
