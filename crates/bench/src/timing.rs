//! A minimal wall-clock benchmark harness.
//!
//! The repository builds with zero external dependencies, so the bench
//! targets under `benches/` cannot use `criterion`. Each bench is a plain
//! `harness = false` binary whose `main` calls [`bench_case`] for every
//! measured case: a short warm-up, then `iters` timed iterations, reporting
//! min / mean / max wall-clock time per iteration.
//!
//! Absolute numbers depend on the host; like the criterion setup this
//! replaces, only relative comparisons are meaningful.

use std::time::Instant;

/// Default number of timed iterations per case.
pub const DEFAULT_ITERS: u32 = 10;

/// Runs `f` once as warm-up and then `iters` timed times, printing a
/// one-line summary. Returns the mean seconds per iteration.
pub fn bench_case<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) -> f64 {
    assert!(iters > 0);
    std::hint::black_box(f());
    let mut times = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(f());
        times.push(start.elapsed().as_secs_f64());
    }
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times.iter().cloned().fold(0.0f64, f64::max);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    println!("{name:<48} {iters:>3} iters  min {min:>9.4}s  mean {mean:>9.4}s  max {max:>9.4}s");
    mean
}

/// Times one execution of `f` and returns nanoseconds per operation,
/// dividing the elapsed wall-clock time by `ops`.
///
/// All wall-clock reads in the workspace are confined to this module so the
/// determinism lint can scope its `Instant`/`SystemTime` ban; measurement
/// loops elsewhere must call through here.
pub fn ns_per_op(ops: u64, f: &mut impl FnMut()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_nanos() as f64 / ops.max(1) as f64
}

/// Prints the standard header for a bench group.
pub fn bench_group(title: &str) {
    println!("=== {title} ===");
}
