//! Elastic scaling scenario: grow a cluster from 2 to 4 nodes and shrink it
//! back while ingestion keeps running, comparing the data movement of
//! DynaHash against AsterixDB's original global rebalancing.
//!
//! Run with `cargo run --example elastic_scaling`.

use dynahash::cluster::{Cluster, DatasetSpec, RebalanceOptions};
use dynahash::core::{NodeId, Scheme};
use dynahash::lsm::entry::Key;
use dynahash::lsm::Bytes;

fn record(i: u64) -> (Key, Bytes) {
    (Key::from_u64(i), Bytes::from(vec![(i % 251) as u8; 96]))
}

fn run_scenario(scheme: Scheme) -> (f64, f64) {
    let mut cluster = Cluster::new(2);
    let ds = cluster
        .create_dataset(DatasetSpec::new("measurements", scheme))
        .expect("create dataset");
    // one long-lived client session carries all the ingestion; it goes
    // stale at every rebalance and converges through the redirect protocol
    let mut session = cluster.session(ds).expect("open session");
    session
        .ingest(&mut cluster, (0..30_000u64).map(record))
        .expect("initial load");

    let mut total_minutes = 0.0;
    let mut total_moved_fraction = 0.0;
    let mut steps = 0.0;

    // Scale out: 2 -> 3 -> 4 nodes, rebalancing after each new node, with
    // fresh data continuing to arrive between steps.
    for step in 0..2u64 {
        cluster.add_node().expect("add node");
        let target = cluster.topology().clone();
        let report = cluster
            .rebalance(ds, &target, RebalanceOptions::none())
            .expect("scale-out rebalance");
        total_minutes += report.elapsed.as_minutes_f64();
        total_moved_fraction += report.moved_fraction;
        steps += 1.0;
        let start = 30_000 + step * 5_000;
        session
            .ingest(&mut cluster, (start..start + 5_000).map(record))
            .expect("ingest between steps");
    }

    // Scale in: remove the last node again.
    let victim = NodeId(cluster.topology().num_nodes() as u32 - 1);
    let target = cluster.topology_without(victim);
    let report = cluster
        .rebalance(ds, &target, RebalanceOptions::none())
        .expect("scale-in rebalance");
    if scheme.is_bucketed() {
        cluster.decommission_node(victim).expect("decommission");
    }
    total_minutes += report.elapsed.as_minutes_f64();
    total_moved_fraction += report.moved_fraction;
    steps += 1.0;

    cluster.check_dataset_consistency(ds).expect("consistent");
    assert_eq!(cluster.dataset_len(ds).unwrap(), 40_000);
    // the stale session still reads its own writes after three rebalances
    assert!(session
        .get(&cluster, &Key::from_u64(39_999))
        .expect("routed read")
        .is_some());
    (total_minutes, total_moved_fraction / steps)
}

fn main() {
    println!("elastic scaling scenario: 2 -> 3 -> 4 -> 3 nodes, 40k records\n");
    for scheme in [Scheme::dynahash(96 * 1024, 8), Scheme::Hashing] {
        let (minutes, avg_moved) = run_scenario(scheme);
        println!(
            "{:<10} total rebalance time {:>7.2} simulated minutes, average data moved per step {:>5.1}%",
            scheme.name(),
            minutes,
            avg_moved * 100.0
        );
    }
    println!("\nDynaHash moves only the affected buckets at each step, while global");
    println!("hash repartitioning rewrites nearly the whole dataset every time.");
}
