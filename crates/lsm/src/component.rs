//! Immutable disk components.
//!
//! A disk component is a sorted, immutable run of entries produced by a
//! flush or a merge. Components are shared via `Arc`, which provides the
//! reference counting the paper uses to let readers keep accessing a
//! component even after it has been replaced or its bucket dropped.
//!
//! Two wrapper-level metadata features support DynaHash:
//!
//! * **Reference components** (bucket splits, Algorithm 1): the wrapper holds
//!   a `visible_bucket` filter; only entries whose hash falls into that bucket
//!   are visible. The actual data rewrite is postponed to the next merge.
//! * **Invalid buckets** (lazy secondary-index cleanup, Section V-C): the
//!   wrapper records buckets that were moved away; entries belonging to them
//!   are filtered out of reads and physically dropped at the next merge.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::bloom::BloomFilter;
use crate::bucket::BucketId;
use crate::entry::{Entry, Key, Op, StorageFootprint};

/// Monotonically increasing identifier for disk components.
pub type ComponentId = u64;

static NEXT_COMPONENT_ID: AtomicU64 = AtomicU64::new(1);

fn next_component_id() -> ComponentId {
    NEXT_COMPONENT_ID.fetch_add(1, Ordering::Relaxed)
}

/// How a disk component came into existence. Rebalancing distinguishes
/// locally written data from data received from another partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ComponentSource {
    /// Produced by flushing a memory component.
    Flush,
    /// Produced by merging older components.
    Merge,
    /// Bulk-loaded from records scanned at a source partition during a
    /// rebalance (strictly older than any replicated log records).
    Loaded,
    /// Built from log records replicated from a source partition during a
    /// rebalance (concurrent writes).
    Replicated,
}

/// How the keys of a component should be interpreted when checking bucket
/// membership for lazy cleanup.
///
/// Primary-index and primary-key-index components store the record's primary
/// key directly; secondary-index components store a composite of the
/// secondary key and the primary key, and the bucket of an entry is the
/// bucket of the *primary* part (Section V-C: the validation check uses the
/// primary key embedded in the index entry).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum KeyLayout {
    /// The component key is the record's primary key.
    #[default]
    PrimaryKey,
    /// The component key is a `SecondaryEntry` composite; decode it and hash
    /// the primary part.
    SecondaryComposite,
}

impl KeyLayout {
    /// True if `key` belongs to `bucket` under this layout.
    pub fn key_in_bucket(&self, key: &Key, bucket: &crate::bucket::BucketId) -> bool {
        match self {
            KeyLayout::PrimaryKey => bucket.contains_key(key),
            KeyLayout::SecondaryComposite => match crate::secondary::SecondaryEntry::decode(key) {
                Some(se) => bucket.contains_key(&se.primary),
                None => bucket.contains_key(key),
            },
        }
    }
}

/// The immutable payload of a disk component.
#[derive(Debug)]
pub struct DiskComponentData {
    /// Unique identifier.
    pub id: ComponentId,
    /// Entries sorted by key (unique keys).
    pub entries: Vec<Entry>,
    /// Bloom filter over the keys.
    pub bloom: BloomFilter,
    /// Total entry bytes (key + value + header).
    pub size_bytes: usize,
    /// Provenance of the component.
    pub source: ComponentSource,
}

impl DiskComponentData {
    /// Builds a component from pre-sorted entries.
    pub fn from_sorted(entries: Vec<Entry>, source: ComponentSource) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].key < w[1].key));
        let mut bloom = BloomFilter::with_capacity(entries.len());
        let mut size = 0usize;
        for e in &entries {
            bloom.insert(&e.key);
            size += e.size_bytes();
        }
        DiskComponentData {
            id: next_component_id(),
            entries,
            bloom,
            size_bytes: size,
            source,
        }
    }

    /// Binary-searches for a key.
    pub fn find(&self, key: &Key) -> Option<&Entry> {
        self.entries
            .binary_search_by(|e| e.key.cmp(key))
            .ok()
            .map(|i| &self.entries[i])
    }
}

/// A handle to a disk component as seen by one LSM-tree (or one bucket).
///
/// Cloning a `Component` is cheap (it clones an `Arc` and small metadata).
#[derive(Clone, Debug)]
pub struct Component {
    data: Arc<DiskComponentData>,
    /// If set, only entries whose key hashes into this bucket are visible
    /// (reference component produced by a bucket split).
    visible_bucket: Option<BucketId>,
    /// Buckets whose entries have been moved away and must be ignored
    /// (lazy cleanup). Applied on top of `visible_bucket`.
    invalid_buckets: Arc<Vec<BucketId>>,
    /// How keys are interpreted when checking bucket membership.
    layout: KeyLayout,
    /// Bytes of data visible through this handle, computed eagerly when the
    /// filters change so that size queries stay O(1).
    visible_bytes: usize,
    /// Entries visible through this handle, cached alongside
    /// `visible_bytes` so that `visible_len` is O(1) too.
    visible_count: usize,
    /// True if this handle was transferred whole from another partition by a
    /// component-shipping rebalance (provenance; the underlying data keeps
    /// its original flush/merge source).
    shipped: bool,
}

impl Component {
    /// Builds a brand-new component from sorted entries.
    pub fn from_sorted(entries: Vec<Entry>, source: ComponentSource) -> Self {
        let data = Arc::new(DiskComponentData::from_sorted(entries, source));
        let visible_bytes = data.size_bytes;
        let visible_count = data.entries.len();
        Component {
            data,
            visible_bucket: None,
            invalid_buckets: Arc::new(Vec::new()),
            layout: KeyLayout::PrimaryKey,
            visible_bytes,
            visible_count,
            shipped: false,
        }
    }

    /// Builds a component from possibly unsorted entries (sorts and
    /// deduplicates keeping the last occurrence of each key).
    pub fn from_unsorted(mut entries: Vec<Entry>, source: ComponentSource) -> Self {
        entries.sort_by(|a, b| a.key.cmp(&b.key));
        entries.dedup_by(|newer, older| {
            if newer.key == older.key {
                // keep the later element (newer): overwrite `older` in place.
                std::mem::swap(newer, older);
                true
            } else {
                false
            }
        });
        Self::from_sorted(entries, source)
    }

    /// Creates a *reference component* that exposes only the entries of
    /// `bucket` from the same underlying data (Algorithm 1: bucket split).
    pub fn restrict_to_bucket(&self, bucket: BucketId) -> Component {
        let mut c = Component {
            data: Arc::clone(&self.data),
            visible_bucket: Some(bucket),
            invalid_buckets: Arc::clone(&self.invalid_buckets),
            layout: self.layout,
            visible_bytes: 0,
            visible_count: 0,
            shipped: self.shipped,
        };
        c.recompute_visibility();
        c
    }

    /// Returns a handle to the same sealed data marked as shipped from
    /// another partition (component-level bucket movement). The filters,
    /// Bloom filter, and sorted run travel with the handle — nothing is
    /// copied or rebuilt.
    pub fn clone_shipped(&self) -> Component {
        let mut c = self.clone();
        c.shipped = true;
        c
    }

    /// True if this handle was received whole from another partition.
    pub fn is_shipped(&self) -> bool {
        self.shipped
    }

    /// One pass over the visible entries refreshing both cached counters.
    fn recompute_visibility(&mut self) {
        let (count, bytes) = self
            .iter()
            .fold((0usize, 0usize), |(n, b), e| (n + 1, b + e.size_bytes()));
        self.visible_count = count;
        self.visible_bytes = bytes;
    }

    /// Returns a copy of this component with `bucket` marked invalid (lazy
    /// cleanup of a moved bucket). Reads through the returned handle skip
    /// entries belonging to that bucket.
    pub fn mark_bucket_invalid(&self, bucket: BucketId) -> Component {
        self.mark_bucket_invalid_as(bucket, self.layout)
    }

    /// Like [`Component::mark_bucket_invalid`], but also sets how keys should
    /// be interpreted when checking bucket membership (secondary-index
    /// components store composite keys and must hash the primary part).
    pub fn mark_bucket_invalid_as(&self, bucket: BucketId, layout: KeyLayout) -> Component {
        let mut inv = (*self.invalid_buckets).clone();
        if !inv.contains(&bucket) {
            inv.push(bucket);
        }
        let mut c = Component {
            data: Arc::clone(&self.data),
            visible_bucket: self.visible_bucket,
            invalid_buckets: Arc::new(inv),
            layout,
            visible_bytes: 0,
            visible_count: 0,
            shipped: self.shipped,
        };
        c.recompute_visibility();
        c
    }

    /// Identifier of the underlying data.
    pub fn id(&self) -> ComponentId {
        self.data.id
    }

    /// Provenance of the underlying data.
    pub fn source(&self) -> ComponentSource {
        self.data.source
    }

    /// True if this is a reference component produced by a bucket split.
    pub fn is_reference(&self) -> bool {
        self.visible_bucket.is_some()
    }

    /// The bucket filter of a reference component, if any.
    pub fn visible_bucket(&self) -> Option<BucketId> {
        self.visible_bucket
    }

    /// The buckets marked invalid for lazy cleanup.
    pub fn invalid_buckets(&self) -> &[BucketId] {
        &self.invalid_buckets
    }

    /// True if the component carries lazy-cleanup metadata or a bucket
    /// filter, i.e. a merge would physically drop some entries.
    pub fn needs_compaction(&self) -> bool {
        self.visible_bucket.is_some() || !self.invalid_buckets.is_empty()
    }

    /// Number of reference-counted owners of the underlying data (used by
    /// tests to check that readers keep components alive).
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.data)
    }

    fn entry_visible(&self, key: &Key) -> bool {
        if let Some(b) = &self.visible_bucket {
            if !self.layout.key_in_bucket(key, b) {
                return false;
            }
        }
        // The common case: no lazy-cleanup metadata, so there is nothing to
        // scan (and no hash to recompute) per entry.
        if self.invalid_buckets.is_empty() {
            return true;
        }
        !self
            .invalid_buckets
            .iter()
            .any(|b| self.layout.key_in_bucket(key, b))
    }

    /// Point lookup. Consults the Bloom filter first; applies the bucket
    /// filter and lazy-cleanup metadata. Returns the raw operation (which may
    /// be a tombstone).
    pub fn get(&self, key: &Key) -> Option<&Op> {
        if !self.data.bloom.may_contain(key) {
            return None;
        }
        let entry = self.data.find(key)?;
        if self.entry_visible(key) {
            Some(&entry.op)
        } else {
            None
        }
    }

    /// Iterates visible entries within `[lo, hi)` in key order.
    pub fn range<'a>(
        &'a self,
        lo: Option<&'a Key>,
        hi: Option<&'a Key>,
    ) -> impl Iterator<Item = &'a Entry> + 'a {
        let start = match lo {
            Some(k) => self.data.entries.partition_point(|e| e.key < *k),
            None => 0,
        };
        self.data.entries[start..]
            .iter()
            .take_while(move |e| match hi {
                Some(h) => e.key < *h,
                None => true,
            })
            .filter(move |e| self.entry_visible(&e.key))
    }

    /// Iterates all visible entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = &Entry> + '_ {
        self.range(None, None)
    }

    /// Number of entries in the underlying data (ignoring filters).
    pub fn raw_len(&self) -> usize {
        self.data.entries.len()
    }

    /// Number of entries visible through this handle (applies filters). O(1):
    /// the count is cached whenever the handle's filters change.
    pub fn visible_len(&self) -> usize {
        self.visible_count
    }

    /// Bytes of the underlying data. Reference components share the data and
    /// report the same value for read-cost purposes.
    pub fn size_bytes(&self) -> usize {
        self.data.size_bytes
    }

    /// Bytes of *visible* data: what a rebalance scan of this component would
    /// ship, or what a merge would rewrite. O(1): the value is computed when
    /// the component (or its filtered view) is created.
    pub fn visible_size_bytes(&self) -> usize {
        self.visible_bytes
    }

    /// Bytes of storage newly occupied by this component. Reference
    /// components occupy no additional storage (they only point at existing
    /// data), which matches the paper's description.
    pub fn storage_bytes(&self) -> usize {
        if self.is_reference() {
            0
        } else {
            self.data.size_bytes
        }
    }

    /// Stable identity of the underlying immutable run. Reference components
    /// produced by splits and shipped clones share their parent's data, so
    /// resident-memory accounting must dedupe handles on this token before
    /// summing [`Component::raw_footprint`].
    pub fn data_token(&self) -> usize {
        Arc::as_ptr(&self.data) as usize
    }

    /// Memory accounting over *all* entries of the underlying run, ignoring
    /// bucket filters — reference handles report the full shared allocation
    /// (dedupe on [`Component::data_token`] when aggregating).
    pub fn raw_footprint(&self) -> StorageFootprint {
        let mut fp = StorageFootprint::default();
        for e in &self.data.entries {
            fp.add_entry(e);
        }
        fp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytes::Bytes;

    fn comp(keys: &[u64]) -> Component {
        let entries = keys
            .iter()
            .map(|&k| Entry::put(Key::from_u64(k), Bytes::from(vec![k as u8; 4])))
            .collect();
        Component::from_unsorted(entries, ComponentSource::Flush)
    }

    #[test]
    fn point_lookup_finds_present_keys() {
        let c = comp(&[1, 5, 9]);
        assert!(c.get(&Key::from_u64(5)).is_some());
        assert!(c.get(&Key::from_u64(4)).is_none());
    }

    #[test]
    fn from_unsorted_dedups_keeping_newest() {
        let entries = vec![
            Entry::put(Key::from_u64(1), Bytes::from_static(b"old")),
            Entry::put(Key::from_u64(1), Bytes::from_static(b"new")),
        ];
        let c = Component::from_unsorted(entries, ComponentSource::Flush);
        assert_eq!(c.raw_len(), 1);
        match c.get(&Key::from_u64(1)).unwrap() {
            Op::Put(v) => assert_eq!(v.as_ref(), b"new"),
            Op::Delete => panic!("expected put"),
        }
    }

    #[test]
    fn reference_component_filters_by_bucket() {
        let c = comp(&(0..100).collect::<Vec<_>>());
        let b0 = BucketId::new(0, 1);
        let b1 = BucketId::new(1, 1);
        let r0 = c.restrict_to_bucket(b0);
        let r1 = c.restrict_to_bucket(b1);
        assert!(r0.is_reference());
        assert_eq!(r0.storage_bytes(), 0);
        assert_eq!(r0.visible_len() + r1.visible_len(), c.raw_len());
        // every key visible in exactly one child
        for k in 0..100u64 {
            let key = Key::from_u64(k);
            let in0 = r0.get(&key).is_some();
            let in1 = r1.get(&key).is_some();
            assert!(in0 ^ in1, "key {k} must be visible in exactly one child");
        }
    }

    #[test]
    fn invalid_bucket_hides_entries() {
        let c = comp(&(0..50).collect::<Vec<_>>());
        let moved = BucketId::new(1, 1);
        let cleaned = c.mark_bucket_invalid(moved);
        for k in 0..50u64 {
            let key = Key::from_u64(k);
            if moved.contains_key(&key) {
                assert!(cleaned.get(&key).is_none());
            } else {
                assert!(cleaned.get(&key).is_some());
            }
        }
        assert!(cleaned.visible_len() < c.raw_len());
        assert!(cleaned.needs_compaction());
    }

    #[test]
    fn range_scan_respects_bounds_and_order() {
        let c = comp(&[1, 3, 5, 7, 9]);
        let lo = Key::from_u64(3);
        let hi = Key::from_u64(8);
        let got: Vec<u64> = c
            .range(Some(&lo), Some(&hi))
            .map(|e| e.key.as_u64())
            .collect();
        assert_eq!(got, vec![3, 5, 7]);
    }

    #[test]
    fn ref_count_tracks_sharing() {
        let c = comp(&[1]);
        assert_eq!(c.ref_count(), 1);
        let r = c.restrict_to_bucket(BucketId::new(0, 1));
        assert_eq!(c.ref_count(), 2);
        drop(r);
        assert_eq!(c.ref_count(), 1);
    }

    #[test]
    fn component_ids_are_unique() {
        let a = comp(&[1]);
        let b = comp(&[1]);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn visible_len_and_bytes_stay_cached_through_filter_changes() {
        let c = comp(&(0..80).collect::<Vec<_>>());
        assert_eq!(c.visible_len(), 80);
        assert_eq!(c.visible_size_bytes(), c.size_bytes());
        let r = c.restrict_to_bucket(BucketId::new(0, 1));
        assert_eq!(r.visible_len(), r.iter().count());
        assert_eq!(
            r.visible_size_bytes(),
            r.iter().map(|e| e.size_bytes()).sum::<usize>()
        );
        let cleaned = c.mark_bucket_invalid(BucketId::new(1, 1));
        assert_eq!(cleaned.visible_len(), cleaned.iter().count());
        assert_eq!(cleaned.visible_len() + r.visible_len(), c.visible_len());
    }

    #[test]
    fn clone_shipped_shares_data_and_keeps_filters() {
        let c = comp(&(0..40).collect::<Vec<_>>());
        let restricted = c.restrict_to_bucket(BucketId::new(1, 1));
        let shipped = restricted.clone_shipped();
        assert!(shipped.is_shipped());
        assert!(!restricted.is_shipped());
        assert_eq!(shipped.id(), c.id(), "shipping must not copy the data");
        assert_eq!(shipped.visible_len(), restricted.visible_len());
        assert_eq!(shipped.visible_bucket(), restricted.visible_bucket());
        assert_eq!(c.ref_count(), 3, "shipped handle shares the Arc");
    }
}
