//! The experiment harness: regenerates every figure of the DynaHash paper.
//!
//! Each `figN_*` function builds the clusters, loads the scaled-down TPC-H
//! data, runs the experiment, and returns rows that mirror the corresponding
//! figure of the paper (Section VI):
//!
//! * [`fig6_ingestion`] — ingestion time vs. cluster size (Figure 6);
//! * [`fig7_rebalance`] — rebalance time for removing/adding a node
//!   (Figures 7a and 7b);
//! * [`fig7c_concurrent_writes`] — rebalance time under concurrent ingestion
//!   (Figure 7c);
//! * [`fig8_queries`] — TPC-H query times on the original cluster, including
//!   the lazy-cleanup variant (Figures 8a/8b);
//! * [`fig9_queries`] — query times on the downsized cluster (Figures 9a/9b);
//! * [`ablation_storage_options`] and [`ablation_balance_quality`] — extra
//!   studies of the design choices called out in DESIGN.md.
//!
//! Absolute numbers are simulated time produced by the cost model of
//! `dynahash-cluster`; only the relative comparisons are meaningful.

pub mod json;
pub mod scenario;
pub mod timing;

use dynahash_cluster::{
    Cluster, ClusterConfig, CostModel, RebalanceJob, RebalanceOptions, SimDuration,
};
use dynahash_core::{MovePolicy, NodeId, Scheme};
use dynahash_tpch::loader::lineitem_records;
use dynahash_tpch::{generator, load_tpch, query_traits, run_query, TpchScale, NUM_QUERIES};

use crate::timing::ns_per_op;

/// Scale and layout knobs shared by all experiments.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// TPC-H orders generated per node (the paper scales data with cluster
    /// size; so do we).
    pub orders_per_node: usize,
    /// Storage partitions per node (4 in the paper).
    pub partitions_per_node: u32,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            orders_per_node: 400,
            partitions_per_node: 4,
        }
    }
}

impl ExperimentConfig {
    /// A reduced configuration for fast benches and smoke tests.
    pub fn quick() -> Self {
        ExperimentConfig {
            orders_per_node: 120,
            partitions_per_node: 2,
        }
    }

    fn cluster(&self, nodes: u32) -> Cluster {
        Cluster::with_config(
            nodes,
            ClusterConfig {
                partitions_per_node: self.partitions_per_node,
                cost_model: CostModel::default(),
            },
        )
    }

    /// The three schemes evaluated by the paper, parameterised for this
    /// scale: Hashing, StaticHash(256), and DynaHash with a maximum bucket
    /// size chosen so that each partition ends up with roughly 4 buckets
    /// after loading (mirroring the paper's 10 GB threshold).
    pub fn schemes(&self, nodes: u32) -> Vec<Scheme> {
        vec![
            Scheme::Hashing,
            Scheme::static_hash_256(),
            self.dynahash_scheme(nodes),
        ]
    }

    /// The DynaHash scheme sized for this configuration.
    pub fn dynahash_scheme(&self, nodes: u32) -> Scheme {
        // Estimated LineItem bytes per partition: ~4 lineitems per order at
        // ~129 bytes each, divided over the node's partitions.
        let per_partition =
            (self.orders_per_node as u64 * 4 * 130) / self.partitions_per_node as u64;
        let max_bucket = (per_partition / 4).max(4 * 1024);
        Scheme::DynaHash {
            max_bucket_size_bytes: max_bucket,
            initial_buckets: (nodes * self.partitions_per_node).next_power_of_two(),
        }
    }

    fn scale(&self, nodes: u32) -> TpchScale {
        TpchScale::per_node(self.orders_per_node, nodes as usize)
    }
}

// ------------------------------------------------------------------ Figure 6

/// One bar of Figure 6.
#[derive(Debug, Clone)]
pub struct IngestionRow {
    /// Cluster size.
    pub nodes: u32,
    /// Scheme name ("Hashing" / "StaticHash" / "DynaHash").
    pub scheme: &'static str,
    /// Ingestion time in simulated minutes.
    pub minutes: f64,
    /// Records ingested.
    pub records: u64,
}

/// Figure 6: ingestion time for each scheme and cluster size.
pub fn fig6_ingestion(cfg: &ExperimentConfig, node_counts: &[u32]) -> Vec<IngestionRow> {
    let mut rows = Vec::new();
    for &nodes in node_counts {
        for scheme in cfg.schemes(nodes) {
            let mut cluster = cfg.cluster(nodes);
            let (_, _, report) =
                load_tpch(&mut cluster, scheme, cfg.scale(nodes)).expect("load TPC-H");
            rows.push(IngestionRow {
                nodes,
                scheme: scheme.name(),
                minutes: report.elapsed.as_minutes_f64(),
                records: report.records,
            });
        }
    }
    rows
}

// --------------------------------------------------------------- Figures 7a/b

/// Scale-in (remove a node) or scale-out (add a node).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebalanceDirection {
    /// Rebalance from N nodes to N-1 nodes (Figure 7a).
    RemoveNode,
    /// Rebalance from N-1 nodes to N nodes (Figure 7b).
    AddNode,
}

/// One bar of Figure 7a/7b.
#[derive(Debug, Clone)]
pub struct RebalanceRow {
    /// Cluster size N referenced by the figure's x-axis.
    pub nodes: u32,
    /// Scheme name.
    pub scheme: &'static str,
    /// Total rebalance time in simulated minutes (all datasets).
    pub minutes: f64,
    /// Fraction of the primary data that moved (weighted over datasets).
    pub moved_fraction: f64,
}

/// Wave width used by the figure experiments. AsterixDB executes the data
/// movement as one Hyracks job that ships buckets from all partitions
/// concurrently, so the figures use a parallel wave schedule rather than the
/// conservative serial default of `RebalanceOptions`.
const FIGURE_MOVES_PER_WAVE: usize = 4;

/// Figures 7a/7b: rebalance time for removing or adding one node.
pub fn fig7_rebalance(
    cfg: &ExperimentConfig,
    node_counts: &[u32],
    direction: RebalanceDirection,
) -> Vec<RebalanceRow> {
    let mut rows = Vec::new();
    for &nodes in node_counts {
        for scheme in cfg.schemes(nodes) {
            // Load on the initial cluster size for the experiment: removing
            // starts from N nodes, adding starts from N-1 nodes.
            let initial_nodes = match direction {
                RebalanceDirection::RemoveNode => nodes,
                RebalanceDirection::AddNode => (nodes - 1).max(1),
            };
            let mut cluster = cfg.cluster(initial_nodes);
            let (tables, _, _) =
                load_tpch(&mut cluster, scheme, cfg.scale(nodes)).expect("load TPC-H");
            let target = match direction {
                RebalanceDirection::RemoveNode => {
                    cluster.topology_without(NodeId(initial_nodes - 1))
                }
                RebalanceDirection::AddNode => {
                    cluster.add_node().expect("add node");
                    cluster.topology().clone()
                }
            };
            let mut total = SimDuration::ZERO;
            let mut moved = 0.0f64;
            let mut weight = 0.0f64;
            for ds in [
                tables.lineitem,
                tables.orders,
                tables.customer,
                tables.part,
                tables.supplier,
                tables.partsupp,
                tables.nation,
                tables.region,
            ] {
                let bytes = cluster.dataset_primary_bytes(ds).unwrap_or(0) as f64;
                let report = cluster
                    .rebalance(
                        ds,
                        &target,
                        RebalanceOptions::none().with_max_concurrent_moves(FIGURE_MOVES_PER_WAVE),
                    )
                    .expect("rebalance");
                total += report.elapsed;
                moved += report.moved_fraction * bytes;
                weight += bytes;
            }
            rows.push(RebalanceRow {
                nodes,
                scheme: scheme.name(),
                minutes: total.as_minutes_f64(),
                moved_fraction: if weight == 0.0 { 0.0 } else { moved / weight },
            });
        }
    }
    rows
}

// ----------------------------------------------------------------- Figure 7c

/// One point of Figure 7c.
#[derive(Debug, Clone)]
pub struct ConcurrentWriteRow {
    /// Controlled write rate in krecords per simulated second.
    pub write_rate_krps: f64,
    /// Rebalance time in simulated minutes.
    pub minutes: f64,
    /// Concurrent records ingested while rebalancing.
    pub concurrent_records: u64,
}

/// Figure 7c: DynaHash rebalance time (4 → 3 nodes) under concurrent
/// LineItem ingestion at a controlled rate.
pub fn fig7c_concurrent_writes(
    cfg: &ExperimentConfig,
    rates_krps: &[f64],
) -> Vec<ConcurrentWriteRow> {
    let nodes = 4u32;
    // Baseline rebalance (no writes) to size the concurrent workload:
    // records = rate × baseline duration.
    let baseline_secs = {
        let mut cluster = cfg.cluster(nodes);
        let scheme = cfg.dynahash_scheme(nodes);
        let (tables, _, _) = load_tpch(&mut cluster, scheme, cfg.scale(nodes)).expect("load");
        let target = cluster.topology_without(NodeId(nodes - 1));
        let report = cluster
            .rebalance(
                tables.lineitem,
                &target,
                RebalanceOptions::none().with_max_concurrent_moves(FIGURE_MOVES_PER_WAVE),
            )
            .expect("rebalance");
        report.elapsed.as_secs_f64()
    };

    let mut rows = Vec::new();
    for &rate in rates_krps {
        let mut cluster = cfg.cluster(nodes);
        let scheme = cfg.dynahash_scheme(nodes);
        let (tables, data, _) = load_tpch(&mut cluster, scheme, cfg.scale(nodes)).expect("load");
        let target = cluster.topology_without(NodeId(nodes - 1));
        let concurrent_count = (rate * 1000.0 * baseline_secs) as usize;
        let next_orderkey = data.orders.len() as u64 + 1;
        let extra = generator::extra_lineitems(next_orderkey, concurrent_count, 7);
        let writes = lineitem_records(&extra);
        let report = cluster
            .rebalance(
                tables.lineitem,
                &target,
                RebalanceOptions::none()
                    .with_max_concurrent_moves(FIGURE_MOVES_PER_WAVE)
                    .with_concurrent_writes(writes),
            )
            .expect("rebalance with writes");
        rows.push(ConcurrentWriteRow {
            write_rate_krps: rate,
            minutes: report.elapsed.as_minutes_f64(),
            concurrent_records: report.concurrent_writes_applied,
        });
    }
    rows
}

// -------------------------------------------- wave parallelism (step executor)

/// One row of the wave-parallelism study: the same DynaHash scale-in
/// rebalance executed by the step-driven job with a different
/// `max_concurrent_moves`.
#[derive(Debug, Clone)]
pub struct WaveRow {
    /// Bucket moves per wave.
    pub max_concurrent_moves: usize,
    /// Total simulated rebalance makespan in minutes.
    pub minutes: f64,
    /// Simulated makespan of the data-movement phase alone (the sum of the
    /// waves' makespans) in minutes.
    pub movement_minutes: f64,
    /// Number of waves the moves were scheduled into.
    pub waves: usize,
    /// Buckets moved (identical across rows — only the schedule differs).
    pub buckets_moved: usize,
}

/// Wave-parallelism study: rebalance LineItem from 4 to 3 nodes with the
/// step-driven executor, varying how many bucket moves each wave runs in
/// parallel. `max_concurrent_moves = 1` reproduces the serial
/// one-bucket-at-a-time schedule; wider waves are charged their slowest node
/// only, so they finish strictly faster while moving exactly the same
/// buckets.
pub fn rebalance_wave_scaling(cfg: &ExperimentConfig, max_moves: &[usize]) -> Vec<WaveRow> {
    let nodes = 4u32;
    let mut rows = Vec::new();
    for &moves_per_wave in max_moves {
        let mut cluster = cfg.cluster(nodes);
        let scheme = cfg.dynahash_scheme(nodes);
        let (tables, _, _) = load_tpch(&mut cluster, scheme, cfg.scale(nodes)).expect("load");
        let target = cluster.topology_without(NodeId(nodes - 1));
        let mut job = RebalanceJob::plan(&mut cluster, tables.lineitem, &target, moves_per_wave)
            .expect("plan job");
        let waves = job.num_waves();
        job.init(&mut cluster).expect("init");
        while job.has_remaining_waves() {
            job.run_wave(&mut cluster).expect("wave");
        }
        job.prepare(&mut cluster).expect("prepare");
        job.decide(&mut cluster).expect("decide");
        job.commit(&mut cluster).expect("commit");
        let report = job.finalize(&mut cluster).expect("finalize");
        rows.push(WaveRow {
            max_concurrent_moves: moves_per_wave,
            minutes: report.elapsed.as_minutes_f64(),
            movement_minutes: report.phases.data_movement.as_minutes_f64(),
            waves,
            buckets_moved: report.buckets_moved,
        });
    }
    rows
}

// ------------------------------------------------- move policy (tentpole)

/// One row of the move-policy study: the same DynaHash scale-in rebalance
/// executed once per [`MovePolicy`].
#[derive(Debug, Clone)]
pub struct MovePolicyRow {
    /// Policy label ("Records" / "Components").
    pub policy: &'static str,
    /// Total simulated rebalance makespan in minutes.
    pub minutes: f64,
    /// Simulated makespan of the data-movement phase alone, in minutes.
    pub movement_minutes: f64,
    /// Primary-index bytes moved.
    pub bytes_moved: u64,
    /// Records moved.
    pub records_moved: u64,
    /// Buckets moved (identical across rows — only the transfer differs).
    pub buckets_moved: usize,
    /// Order-independent checksum of the post-rebalance record set; both
    /// policies must produce the same value (byte-identical contents).
    pub content_checksum: u64,
}

/// Order-independent FNV-style checksum over every (key, value) pair of the
/// dataset, used to check that both move policies leave byte-identical
/// contents behind.
fn dataset_checksum(cluster: &mut Cluster, dataset: u32) -> u64 {
    let mut exec = cluster.query();
    let (records, _) = exec.collect_records(dataset).expect("collect records");
    let mut acc = 0u64;
    for (k, v) in &records {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in k.as_slice().iter().chain(v.as_ref()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        acc = acc.wrapping_add(h);
    }
    acc ^ records.len() as u64
}

/// Move-policy study: rebalance LineItem from 4 to 3 nodes under each
/// policy. Component shipping moves the same buckets and leaves
/// byte-identical contents, but skips the per-record re-materialisation CPU
/// on both sides of the transfer — the paper's core efficiency claim — so
/// its data-movement makespan must be strictly lower.
pub fn move_policy_comparison(cfg: &ExperimentConfig) -> Vec<MovePolicyRow> {
    let nodes = 4u32;
    [MovePolicy::Records, MovePolicy::Components]
        .into_iter()
        .map(|policy| {
            let mut cluster = cfg.cluster(nodes);
            let scheme = cfg.dynahash_scheme(nodes);
            let (tables, _, _) = load_tpch(&mut cluster, scheme, cfg.scale(nodes)).expect("load");
            let target = cluster.topology_without(NodeId(nodes - 1));
            let report = cluster
                .rebalance(
                    tables.lineitem,
                    &target,
                    RebalanceOptions::none()
                        .with_max_concurrent_moves(FIGURE_MOVES_PER_WAVE)
                        .with_move_policy(policy),
                )
                .expect("rebalance");
            cluster
                .check_rebalance_integrity(tables.lineitem, report.rebalance_id)
                .expect("post-rebalance integrity");
            MovePolicyRow {
                policy: policy.name(),
                minutes: report.elapsed.as_minutes_f64(),
                movement_minutes: report.phases.data_movement.as_minutes_f64(),
                bytes_moved: report.bytes_moved,
                records_moved: report.records_moved,
                buckets_moved: report.buckets_moved,
                content_checksum: dataset_checksum(&mut cluster, tables.lineitem),
            }
        })
        .collect()
}

/// Renders move-policy rows as a markdown table.
pub fn format_move_policy(rows: &[MovePolicyRow]) -> String {
    let mut s = String::from(
        "| policy | buckets | records | movement (sim s) | total (sim s) | checksum |\n|---|---|---|---|---|---|\n",
    );
    for r in rows {
        s.push_str(&format!(
            "| {} | {} | {} | {:.3} | {:.3} | {:016x} |\n",
            r.policy,
            r.buckets_moved,
            r.records_moved,
            r.movement_minutes * 60.0,
            r.minutes * 60.0,
            r.content_checksum
        ));
    }
    s
}

/// Renders wave-parallelism rows as a markdown table.
pub fn format_waves(rows: &[WaveRow]) -> String {
    let mut s = String::from(
        "| moves/wave | waves | buckets | movement (sim s) | total (sim s) |\n|---|---|---|---|---|\n",
    );
    for r in rows {
        s.push_str(&format!(
            "| {} | {} | {} | {:.3} | {:.3} |\n",
            r.max_concurrent_moves,
            r.waves,
            r.buckets_moved,
            r.movement_minutes * 60.0,
            r.minutes * 60.0
        ));
    }
    s
}

// ------------------------------------------------- session routing study

/// One row of the session-routing study: redirect-protocol traffic and
/// per-operation overhead for one phase of a rebalance.
#[derive(Debug, Clone)]
pub struct RoutingRow {
    /// Phase label: "outside" (no rebalance), "during" (between waves of a
    /// step-driven job), or "after" (stale sessions converging post-commit).
    pub phase: &'static str,
    /// Client sessions driving traffic in this phase.
    pub sessions: usize,
    /// Logical requests issued across all sessions.
    pub ops: u64,
    /// Stale-directory rejections received.
    pub redirects: u64,
    /// Refreshes served as a directory delta.
    pub delta_refreshes: u64,
    /// Refreshes that copied the full snapshot.
    pub full_refreshes: u64,
    /// Buckets moved by the rebalance (0 outside one) — the redirect bound.
    pub buckets_moved: usize,
    /// Read-your-writes or final-contents violations observed (must be 0).
    pub integrity_violations: u64,
    /// Wall-clock nanoseconds per point read through a session (best rep).
    pub session_ns_per_op: f64,
    /// Wall-clock nanoseconds per point read through direct (admin) access
    /// (best rep).
    pub direct_ns_per_op: f64,
    /// Session routing cost relative to direct access: the minimum ratio
    /// over interleaved session/direct measurement pairs (paired minima shed
    /// the scheduler and frequency noise that independent minima keep).
    /// 1.0 on rows without a timing arm.
    pub overhead_ratio: f64,
}

/// Interleaves `reps` (session, direct) measurement pairs — `run(false)` is
/// the session arm, `run(true)` the direct arm — and returns the per-op
/// minima of each arm plus the minimum paired ratio.
fn paired_overhead(reps: usize, ops: u64, mut run: impl FnMut(bool)) -> (f64, f64, f64) {
    // warm-up both arms
    run(false);
    run(true);
    let (mut best_s, mut best_d, mut best_ratio) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..reps.max(1) {
        let s = ns_per_op(ops, &mut || run(false));
        let d = ns_per_op(ops, &mut || run(true));
        best_s = best_s.min(s);
        best_d = best_d.min(d);
        if d > 0.0 {
            best_ratio = best_ratio.min(s / d);
        }
    }
    (best_s, best_d, best_ratio)
}

/// The session-routing study: a DynaHash dataset on 4 nodes, read and
/// written exclusively through client sessions, across a 4 → 3 scale-in
/// driven step by step.
///
/// * **outside** — a fresh session's point reads vs direct (admin) access:
///   the routing layer's steady-state overhead, with zero redirects.
/// * **during** — four sessions opened *before* the job keep reading and
///   writing between waves: sources serve moving buckets until the commit,
///   so the protocol stays silent (zero redirects) while every session
///   still reads its own writes.
/// * **after** — the same, now-stale, sessions drive reads over every key:
///   the first touch of a moved bucket redirects, one (delta) refresh per
///   session converges it, and the final contents match a fresh session
///   byte for byte. Redirects are bounded by buckets-moved per session.
pub fn session_routing_study(cfg: &ExperimentConfig) -> Vec<RoutingRow> {
    use dynahash_cluster::Session;
    use dynahash_lsm::entry::Key;
    use dynahash_lsm::Bytes;

    const NUM_SESSIONS: usize = 4;
    const TIMING_REPS: usize = 5;
    let nodes = 4u32;
    let n = cfg.orders_per_node as u64 * 40;
    let record = |i: u64| (Key::from_u64(i), Bytes::from(vec![(i % 251) as u8; 48]));

    let mut cluster = cfg.cluster(nodes);
    let scheme = cfg.dynahash_scheme(nodes);
    let ds = cluster
        .create_dataset(dynahash_cluster::DatasetSpec::new("events", scheme))
        .expect("create dataset");
    cluster
        .session(ds)
        .expect("session")
        .ingest(&mut cluster, (0..n).map(record))
        .expect("load");

    // ---- outside a rebalance: steady-state routing overhead. The session
    // and direct arms run the same key loop back to back, interleaved per
    // repetition, and the gate uses the best paired ratio.
    let mut fresh = cluster.session(ds).expect("session");
    let (session_ns, direct_ns, overhead) = {
        let fresh = &mut fresh;
        // split borrows: the session arm reads through &Cluster, the direct
        // arm through the admin view of the same cluster, so the two
        // closures cannot be alive at once — drive them via a mode flag.
        let mut run = |direct: bool| {
            if direct {
                let admin = cluster.admin();
                for i in 0..n {
                    let key = Key::from_u64(i);
                    let p = admin.route_key(ds, &key).expect("route");
                    std::hint::black_box(
                        admin
                            .partition(p)
                            .expect("partition")
                            .dataset(ds)
                            .unwrap()
                            .get(&key),
                    );
                }
            } else {
                for i in 0..n {
                    std::hint::black_box(fresh.get(&cluster, &Key::from_u64(i)).expect("get"));
                }
            }
        };
        paired_overhead(TIMING_REPS, n, &mut run)
    };
    let outside_metrics = fresh.metrics();
    let mut rows = vec![RoutingRow {
        phase: "outside",
        sessions: 1,
        ops: outside_metrics.requests,
        redirects: outside_metrics.redirects,
        delta_refreshes: outside_metrics.delta_refreshes,
        full_refreshes: outside_metrics.full_refreshes,
        buckets_moved: 0,
        integrity_violations: 0,
        session_ns_per_op: session_ns,
        direct_ns_per_op: direct_ns,
        overhead_ratio: overhead,
    }];

    // ---- during: stale-capable sessions interleaved with job steps
    let mut sessions: Vec<Session> = (0..NUM_SESSIONS)
        .map(|_| cluster.session(ds).expect("session"))
        .collect();
    let target = cluster.topology_without(NodeId(nodes - 1));
    let mut job = RebalanceJob::plan(&mut cluster, ds, &target, 4).expect("plan");
    job.init(&mut cluster).expect("init");
    let mut violations = 0u64;
    let mut next_key = n;
    let mut wave_idx = 0u64;
    while job.has_remaining_waves() {
        job.run_wave(&mut cluster).expect("wave");
        for (s, session) in sessions.iter_mut().enumerate() {
            // each session writes its own key and immediately reads it back
            let (k, v) = record(next_key + s as u64);
            session
                .put(&mut cluster, k.clone(), v.clone())
                .expect("routed write");
            if session.get(&cluster, &k).expect("routed read") != Some(v) {
                violations += 1;
            }
            // plus a spread of base-data reads across the hash space
            for i in (wave_idx * 13..).step_by(97).take(8) {
                let (k, v) = record(i % n);
                if session.get(&cluster, &k).expect("routed read") != Some(v) {
                    violations += 1;
                }
            }
        }
        next_key += NUM_SESSIONS as u64;
        wave_idx += 1;
    }
    let mid: dynahash_cluster::SessionMetrics = sessions.iter().map(|s| s.metrics()).fold(
        dynahash_cluster::SessionMetrics::default(),
        |mut acc, m| {
            acc.requests += m.requests;
            acc.redirects += m.redirects;
            acc.delta_refreshes += m.delta_refreshes;
            acc.full_refreshes += m.full_refreshes;
            acc.retries += m.retries;
            acc
        },
    );
    job.prepare(&mut cluster).expect("prepare");
    job.decide(&mut cluster).expect("decide");
    job.commit(&mut cluster).expect("commit");
    let report = job.finalize(&mut cluster).expect("finalize");
    cluster
        .check_rebalance_integrity(ds, report.rebalance_id)
        .expect("post-rebalance integrity");
    rows.push(RoutingRow {
        phase: "during",
        sessions: NUM_SESSIONS,
        ops: mid.requests,
        redirects: mid.redirects,
        delta_refreshes: mid.delta_refreshes,
        full_refreshes: mid.full_refreshes,
        buckets_moved: report.buckets_moved,
        integrity_violations: violations,
        session_ns_per_op: 0.0,
        direct_ns_per_op: 0.0,
        overhead_ratio: 1.0,
    });

    // ---- after: the stale sessions converge through the redirect protocol
    let mut violations = 0u64;
    let mut redirects = 0u64;
    let mut delta_refreshes = 0u64;
    let mut full_refreshes = 0u64;
    let mut ops = 0u64;
    let expected = cluster
        .session(ds)
        .expect("session")
        .collect_records(&cluster)
        .expect("oracle scan")
        .0;
    for session in sessions.iter_mut() {
        let before = session.metrics();
        for i in 0..n {
            let (k, v) = record(i);
            if session.get(&cluster, &k).expect("routed read") != Some(v) {
                violations += 1;
            }
        }
        let (contents, raw) = session.collect_records(&cluster).expect("session scan");
        if contents != expected || raw != expected.len() {
            violations += 1;
        }
        let after = session.metrics();
        ops += after.requests - before.requests;
        redirects += after.redirects - before.redirects;
        delta_refreshes += after.delta_refreshes - before.delta_refreshes;
        full_refreshes += after.full_refreshes - before.full_refreshes;
    }
    rows.push(RoutingRow {
        phase: "after",
        sessions: NUM_SESSIONS,
        ops,
        redirects,
        delta_refreshes,
        full_refreshes,
        buckets_moved: report.buckets_moved,
        integrity_violations: violations,
        session_ns_per_op: 0.0,
        direct_ns_per_op: 0.0,
        overhead_ratio: 1.0,
    });
    rows
}

/// Maximum session-routing overhead the `routing` gate tolerates outside a
/// rebalance (acceptance bar: within 10% of direct access).
pub const ROUTING_OVERHEAD_GATE: f64 = 1.10;

/// Checks the session-routing gate over the study's rows. Returns the list
/// of violations (empty = gate passes): stale sessions must converge with
/// zero integrity violations, redirects must be zero outside/during a
/// rebalance and bounded by buckets-moved per session after it, and the
/// steady-state routing overhead must stay within
/// [`ROUTING_OVERHEAD_GATE`] of direct access.
pub fn routing_gate_violations(rows: &[RoutingRow]) -> Vec<String> {
    let mut bad = Vec::new();
    for r in rows {
        if r.integrity_violations > 0 {
            bad.push(format!(
                "{}: {} integrity violations (lost or wrong reads)",
                r.phase, r.integrity_violations
            ));
        }
    }
    match rows.iter().find(|r| r.phase == "outside") {
        Some(outside) => {
            if outside.redirects != 0 {
                bad.push(format!(
                    "outside: {} redirects without any rebalance",
                    outside.redirects
                ));
            }
            if outside.overhead_ratio > ROUTING_OVERHEAD_GATE {
                bad.push(format!(
                    "outside: session overhead {:.3}x exceeds the {:.2}x gate \
                     ({:.0} ns/op vs {:.0} ns/op direct)",
                    outside.overhead_ratio,
                    ROUTING_OVERHEAD_GATE,
                    outside.session_ns_per_op,
                    outside.direct_ns_per_op
                ));
            }
        }
        None => bad.push("outside row missing".to_string()),
    }
    match rows.iter().find(|r| r.phase == "during") {
        Some(during) => {
            if during.redirects != 0 {
                bad.push(format!(
                    "during: {} redirects — old owners must serve moving buckets until commit",
                    during.redirects
                ));
            }
        }
        None => bad.push("during row missing".to_string()),
    }
    match rows.iter().find(|r| r.phase == "after") {
        Some(after) => {
            if after.redirects == 0 {
                bad.push("after: zero redirects — the protocol was never exercised".to_string());
            }
            let bound = (after.sessions * after.buckets_moved) as u64;
            if after.redirects > bound {
                bad.push(format!(
                    "after: {} redirects exceed the sessions x buckets-moved bound of {}",
                    after.redirects, bound
                ));
            }
        }
        None => bad.push("after row missing".to_string()),
    }
    bad
}

// --------------------------------------------- directory lookup study (PR 5)

/// One row of the directory-lookup study: per-lookup wall-clock cost of the
/// slot-array directory vs the pre-PR 5 linear scan, at one bucket count.
#[derive(Debug, Clone)]
pub struct LookupRow {
    /// Number of buckets in the directory.
    pub buckets: usize,
    /// Nanoseconds per `lookup_hash` through the slot array (best rep).
    pub slot_ns_per_lookup: f64,
    /// Nanoseconds per lookup through a linear scan over the bucket list
    /// (the old implementation, kept here as the timing oracle; best rep).
    pub scan_ns_per_lookup: f64,
    /// `scan / slot` — how much routing got cheaper.
    pub speedup: f64,
}

/// Measures slot-array vs linear-scan lookup cost at the given bucket
/// counts (each rounded up to a power of two). Both arms resolve the same
/// pseudo-random hash sequence and are interleaved per repetition, best rep
/// kept, so scheduler noise cannot flip the comparison.
pub fn directory_lookup_study(bucket_counts: &[usize]) -> Vec<LookupRow> {
    use dynahash_core::{BucketId, GlobalDirectory, PartitionId};
    use dynahash_lsm::rng::SplitMix64;

    const REPS: usize = 5;
    let parts: Vec<PartitionId> = (0..8).map(PartitionId).collect();
    bucket_counts
        .iter()
        .map(|&n| {
            let depth = n.next_power_of_two().trailing_zeros() as u8;
            let dir = GlobalDirectory::initial(depth, &parts).expect("initial directory");
            let buckets: Vec<(BucketId, PartitionId)> = dir.iter().collect();
            let mut rng = SplitMix64::seed_from_u64(0x100c_0000 + n as u64);
            // Scale the scan arm's batch down with the bucket count so one
            // rep stays fast; per-lookup costs are what the row reports.
            let slot_lookups: usize = 200_000;
            let scan_lookups: usize = (4_000_000 / n.max(1)).clamp(2_000, 200_000);
            let slot_hashes: Vec<u64> = (0..slot_lookups).map(|_| rng.next_u64()).collect();
            let scan_hashes: Vec<u64> = (0..scan_lookups).map(|_| rng.next_u64()).collect();
            let (mut best_slot, mut best_scan) = (f64::INFINITY, f64::INFINITY);
            for _ in 0..REPS {
                best_slot = best_slot.min(timing::ns_per_op(slot_lookups as u64, &mut || {
                    for &h in &slot_hashes {
                        std::hint::black_box(dir.lookup_hash(h));
                    }
                }));
                best_scan = best_scan.min(timing::ns_per_op(scan_lookups as u64, &mut || {
                    for &h in &scan_hashes {
                        std::hint::black_box(buckets.iter().find(|(b, _)| b.contains_hash(h)));
                    }
                }));
            }
            LookupRow {
                buckets: 1usize << depth,
                slot_ns_per_lookup: best_slot,
                scan_ns_per_lookup: best_scan,
                speedup: if best_slot > 0.0 {
                    best_scan / best_slot
                } else {
                    f64::INFINITY
                },
            }
        })
        .collect()
}

/// Renders lookup rows as a markdown table.
pub fn format_lookup(rows: &[LookupRow]) -> String {
    let mut s = String::from(
        "| buckets | slot array (ns/lookup) | linear scan (ns/lookup) | speedup |\n|---|---|---|---|\n",
    );
    for r in rows {
        s.push_str(&format!(
            "| {} | {:.1} | {:.1} | {:.1}x |\n",
            r.buckets, r.slot_ns_per_lookup, r.scan_ns_per_lookup, r.speedup
        ));
    }
    s
}

// --------------------------------------- deferred secondary rebuild (PR 5)

/// One row of the deferred-install study: the same DynaHash scale-in
/// rebalance executed once per [`SecondaryRebuild`] mode.
#[derive(Debug, Clone)]
pub struct DeferredInstallRow {
    /// Rebuild-mode label ("Eager" / "Deferred").
    pub mode: &'static str,
    /// Total simulated rebalance makespan in minutes.
    pub minutes: f64,
    /// Simulated makespan of the data-movement phase alone, in minutes —
    /// the quantity the deferral shrinks.
    pub movement_minutes: f64,
    /// Records moved.
    pub records_moved: u64,
    /// Buckets moved.
    pub buckets_moved: usize,
    /// Records whose secondary entries `warm_indexes` had to materialize
    /// after the commit (0 for the eager baseline).
    pub warmed_records: u64,
    /// Order-independent checksum over every secondary-index answer after
    /// warming; both modes must produce the same value.
    pub index_checksum: u64,
    /// Content/index/integrity violations vs the eager oracle (must be 0).
    pub integrity_violations: u64,
}

/// Order-independent FNV-style checksum over index-scan answers.
fn index_checksum(
    hits: &[(
        dynahash_core::PartitionId,
        Vec<dynahash_lsm::SecondaryEntry>,
    )],
) -> u64 {
    let mut acc = 0u64;
    let mut n = 0u64;
    for (p, entries) in hits {
        for se in entries {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ p.0 as u64;
            for &b in se.secondary.as_slice().iter().chain(se.primary.as_slice()) {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            acc = acc.wrapping_add(h);
            n += 1;
        }
    }
    acc ^ n
}

/// Deferred-install study: an events dataset with a secondary index is
/// rebalanced from 4 to 3 nodes under each [`SecondaryRebuild`] mode, with
/// a mid-flight feed. Deferring the secondary rebuild must strictly shrink
/// the data-movement makespan (the rebuild CPU leaves the commit path)
/// while `index_scan` — which warms deferred buckets on first touch —
/// returns byte-identical answers and identical dataset contents.
pub fn deferred_install_study(cfg: &ExperimentConfig) -> Vec<DeferredInstallRow> {
    use dynahash_cluster::{DatasetSpec, SecondaryIndexDef};
    use dynahash_core::SecondaryRebuild;
    use dynahash_lsm::entry::Key;
    use dynahash_lsm::Bytes;

    let nodes = 4u32;
    let n = cfg.orders_per_node as u64 * 40;
    let record = |i: u64| {
        let mut v = (i % 53).to_be_bytes().to_vec();
        v.extend_from_slice(&[(i % 251) as u8; 48]);
        (Key::from_u64(i), Bytes::from(v))
    };
    let mut oracle: Option<(std::collections::BTreeMap<Key, Bytes>, u64)> = None;
    [SecondaryRebuild::Eager, SecondaryRebuild::Deferred]
        .into_iter()
        .map(|mode| {
            let mut cluster = cfg.cluster(nodes);
            let scheme = cfg.dynahash_scheme(nodes);
            let spec = DatasetSpec::new("events", scheme).with_secondary_index(
                SecondaryIndexDef::new("idx_tag", |p: &[u8]| {
                    if p.len() >= 8 {
                        let mut b = [0u8; 8];
                        b.copy_from_slice(&p[..8]);
                        Some(Key::from_u64(u64::from_be_bytes(b)))
                    } else {
                        None
                    }
                }),
            );
            let ds = cluster.create_dataset(spec).expect("create dataset");
            cluster
                .session(ds)
                .expect("session")
                .ingest(&mut cluster, (0..n).map(record))
                .expect("load");
            let target = cluster.topology_without(NodeId(nodes - 1));
            let writes: Vec<_> = (500_000..500_000 + n / 10).map(record).collect();
            let report = cluster
                .rebalance(
                    ds,
                    &target,
                    RebalanceOptions::none()
                        .with_max_concurrent_moves(FIGURE_MOVES_PER_WAVE)
                        .with_secondary_rebuild(mode)
                        .with_concurrent_writes(writes),
                )
                .expect("rebalance");
            let mut violations = 0u64;
            if cluster
                .check_rebalance_integrity(ds, report.rebalance_id)
                .is_err()
            {
                violations += 1;
            }
            // Deferred mode must actually defer: some destination still
            // holds unwarmed buckets until warm_indexes materializes them.
            let warmed = cluster.admin().warm_indexes(ds).expect("warm");
            if mode == SecondaryRebuild::Deferred && warmed == 0 {
                violations += 1;
            }
            if mode == SecondaryRebuild::Eager && warmed != 0 {
                violations += 1;
            }
            let hits = cluster
                .query()
                .index_scan(ds, "idx_tag", None, None)
                .expect("index scan");
            let checksum = index_checksum(&hits);
            let (contents, raw) = cluster
                .query()
                .collect_records(ds)
                .expect("collect records");
            if raw != contents.len() {
                violations += 1;
            }
            match &oracle {
                None => oracle = Some((contents, checksum)),
                Some((expected, expected_checksum)) => {
                    if &contents != expected {
                        violations += 1;
                    }
                    if checksum != *expected_checksum {
                        violations += 1;
                    }
                }
            }
            DeferredInstallRow {
                mode: mode.name(),
                minutes: report.elapsed.as_minutes_f64(),
                movement_minutes: report.phases.data_movement.as_minutes_f64(),
                records_moved: report.records_moved,
                buckets_moved: report.buckets_moved,
                warmed_records: warmed,
                index_checksum: checksum,
                integrity_violations: violations,
            }
        })
        .collect()
}

/// Renders deferred-install rows as a markdown table.
pub fn format_deferred_install(rows: &[DeferredInstallRow]) -> String {
    let mut s = String::from(
        "| rebuild | buckets | records | movement (sim s) | total (sim s) | warmed | index checksum |\n|---|---|---|---|---|---|---|\n",
    );
    for r in rows {
        s.push_str(&format!(
            "| {} | {} | {} | {:.3} | {:.3} | {} | {:016x} |\n",
            r.mode,
            r.buckets_moved,
            r.records_moved,
            r.movement_minutes * 60.0,
            r.minutes * 60.0,
            r.warmed_records,
            r.index_checksum
        ));
    }
    s
}

/// Checks the PR 5 `lookup` figure's gate. Returns the violations (empty =
/// gate passes): the slot array must be strictly faster than the linear
/// scan at every count of ≥ 256 buckets, and the deferred install must
/// strictly beat the eager install on wave makespan with byte-identical
/// index answers and zero integrity violations.
pub fn lookup_gate_violations(
    lookup: &[LookupRow],
    deferred: &[DeferredInstallRow],
) -> Vec<String> {
    let mut bad = Vec::new();
    for r in lookup {
        if r.buckets >= 256 && r.slot_ns_per_lookup >= r.scan_ns_per_lookup {
            bad.push(format!(
                "lookup overhead: slot array ({:.1} ns) not strictly faster than the scan \
                 ({:.1} ns) at {} buckets",
                r.slot_ns_per_lookup, r.scan_ns_per_lookup, r.buckets
            ));
        }
    }
    let eager = deferred.iter().find(|r| r.mode == "Eager");
    let lazy = deferred.iter().find(|r| r.mode == "Deferred");
    match (eager, lazy) {
        (Some(eager), Some(lazy)) => {
            for r in [eager, lazy] {
                if r.integrity_violations > 0 {
                    bad.push(format!(
                        "{}: {} integrity violations",
                        r.mode, r.integrity_violations
                    ));
                }
            }
            if lazy.index_checksum != eager.index_checksum {
                bad.push("deferred install answered index scans differently".to_string());
            }
            if lazy.movement_minutes >= eager.movement_minutes {
                bad.push(format!(
                    "deferred install ({:.6} sim s) did not beat the eager install \
                     ({:.6} sim s) on wave makespan",
                    lazy.movement_minutes * 60.0,
                    eager.movement_minutes * 60.0
                ));
            }
        }
        _ => bad.push("deferred-install rows missing".to_string()),
    }
    bad
}

/// Renders routing rows as a markdown table.
pub fn format_routing(rows: &[RoutingRow]) -> String {
    let mut s = String::from(
        "| phase | sessions | ops | redirects | delta refr. | full refr. | buckets moved | overhead |\n|---|---|---|---|---|---|---|---|\n",
    );
    for r in rows {
        let overhead = if r.session_ns_per_op > 0.0 {
            format!("{:.3}x", r.overhead_ratio)
        } else {
            "-".to_string()
        };
        s.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {} |\n",
            r.phase,
            r.sessions,
            r.ops,
            r.redirects,
            r.delta_refreshes,
            r.full_refreshes,
            r.buckets_moved,
            overhead
        ));
    }
    s
}

// -------------------------------------------------------------- Figures 8 / 9

/// One bar of Figures 8/9: the time of one query under one scheme.
#[derive(Debug, Clone)]
pub struct QueryRow {
    /// Query number (1-22).
    pub query: usize,
    /// Scheme label ("Hashing", "StaticHash", "DynaHash",
    /// "DynaHash-lazy-cleanup").
    pub scheme: String,
    /// Query time in simulated seconds.
    pub seconds: f64,
    /// The query's scalar answer (used to check scheme-independence).
    pub answer: f64,
    /// True if the query is scan-heavy (sensitive to load imbalance).
    pub scan_heavy: bool,
}

fn run_all_queries(
    cluster: &mut Cluster,
    tables: &dynahash_tpch::TpchTables,
    label: &str,
) -> Vec<QueryRow> {
    (1..=NUM_QUERIES)
        .map(|n| {
            let mut exec = cluster.query();
            let answer = run_query(n, &mut exec, tables).expect("query");
            let report = exec.finish();
            QueryRow {
                query: n,
                scheme: label.to_string(),
                seconds: report.elapsed.as_secs_f64(),
                answer,
                scan_heavy: query_traits(n).scan_heavy,
            }
        })
        .collect()
}

/// Figure 8: query times on the original cluster of `nodes` nodes, for
/// Hashing, StaticHash, DynaHash, and DynaHash after a node-remove/node-add
/// round trip that leaves obsolete secondary entries behind
/// ("DynaHash-lazy-cleanup").
pub fn fig8_queries(cfg: &ExperimentConfig, nodes: u32) -> Vec<QueryRow> {
    let mut rows = Vec::new();
    for scheme in cfg.schemes(nodes) {
        let mut cluster = cfg.cluster(nodes);
        let (tables, _, _) = load_tpch(&mut cluster, scheme, cfg.scale(nodes)).expect("load");
        rows.extend(run_all_queries(&mut cluster, &tables, scheme.name()));
    }
    // DynaHash-lazy-cleanup: rebalance down one node and back up, so moved
    // buckets leave obsolete entries in the secondary indexes of their old
    // partitions; queries then pay the validation overhead.
    {
        let scheme = cfg.dynahash_scheme(nodes);
        let mut cluster = cfg.cluster(nodes);
        let (tables, _, _) = load_tpch(&mut cluster, scheme, cfg.scale(nodes)).expect("load");
        let datasets = [
            tables.lineitem,
            tables.orders,
            tables.customer,
            tables.part,
            tables.supplier,
            tables.partsupp,
            tables.nation,
            tables.region,
        ];
        let down = cluster.topology_without(NodeId(nodes - 1));
        for ds in datasets {
            cluster
                .rebalance(ds, &down, RebalanceOptions::none())
                .expect("rebalance down");
        }
        let up = cluster.topology().clone();
        for ds in datasets {
            cluster
                .rebalance(ds, &up, RebalanceOptions::none())
                .expect("rebalance up");
        }
        rows.extend(run_all_queries(
            &mut cluster,
            &tables,
            "DynaHash-lazy-cleanup",
        ));
    }
    rows
}

/// Figure 9: query times on the downsized cluster (`nodes` → `nodes-1`).
/// The Hashing baseline redistributes perfectly; the bucketing schemes end up
/// with some partitions holding one more bucket than others.
pub fn fig9_queries(cfg: &ExperimentConfig, nodes: u32) -> Vec<QueryRow> {
    let mut rows = Vec::new();
    for scheme in cfg.schemes(nodes) {
        let mut cluster = cfg.cluster(nodes);
        let (tables, _, _) = load_tpch(&mut cluster, scheme, cfg.scale(nodes)).expect("load");
        let datasets = [
            tables.lineitem,
            tables.orders,
            tables.customer,
            tables.part,
            tables.supplier,
            tables.partsupp,
            tables.nation,
            tables.region,
        ];
        let target = cluster.topology_without(NodeId(nodes - 1));
        for ds in datasets {
            cluster
                .rebalance(ds, &target, RebalanceOptions::none())
                .expect("rebalance down");
        }
        cluster
            .decommission_node(NodeId(nodes - 1))
            .expect("decommission");
        rows.extend(run_all_queries(&mut cluster, &tables, scheme.name()));
    }
    rows
}

// ----------------------------------------------------------------- Ablations

/// One row of the storage-option ablation (Section IV of the paper discusses
/// Options 1-3; the paper picks Option 3 for primary indexes).
#[derive(Debug, Clone)]
pub struct StorageOptionRow {
    /// Option label.
    pub option: &'static str,
    /// Simulated cost of moving one bucket out of a partition (bytes read).
    pub bucket_move_read_bytes: u64,
    /// Point-lookup work: components examined per lookup (average).
    pub lookup_components: f64,
}

/// Ablation: what moving one bucket costs under the three storage options.
///
/// * Option 1 (one LSM-tree in key order) must scan the whole partition;
/// * Options 2/3 (bucketed) only read the moving bucket.
pub fn ablation_storage_options(records: u64) -> Vec<StorageOptionRow> {
    use dynahash_lsm::{
        BucketId, BucketedConfig, BucketedLsmTree, LsmConfig, LsmTree, StorageMetrics,
    };
    let value = dynahash_lsm::Bytes::from(vec![7u8; 100]);

    // Option 1: a single LSM-tree for the whole partition.
    let metrics1 = StorageMetrics::new_shared();
    let mut flat = LsmTree::new(LsmConfig::with_memtable_budget(16 * 1024), metrics1);
    for i in 0..records {
        flat.put(i, value.clone());
    }
    flat.flush();
    let moving_bucket = BucketId::new(0, 2);
    // moving a bucket must scan everything and filter
    let opt1_read: u64 = flat.scan_all().iter().map(|e| e.size_bytes() as u64).sum();
    let opt1_components = flat.num_components() as f64;

    // Option 3: one LSM-tree per bucket.
    let metrics3 = StorageMetrics::new_shared();
    let mut bucketed = BucketedLsmTree::new(
        BucketedConfig {
            lsm: LsmConfig::with_memtable_budget(16 * 1024),
            max_bucket_size_bytes: None,
            max_depth: 8,
        },
        (0..4).map(|b| BucketId::new(b, 2)),
        metrics3,
    );
    for i in 0..records {
        bucketed.insert(i, value.clone()).expect("bucketed insert");
    }
    bucketed.flush_all();
    let opt3_read: u64 = bucketed
        .scan_bucket(moving_bucket)
        .expect("bucket scan")
        .iter()
        .map(|e| e.size_bytes() as u64)
        .sum();
    let opt3_components = bucketed.num_components() as f64 / 4.0;

    vec![
        StorageOptionRow {
            option: "Option 1 (single LSM, key order)",
            bucket_move_read_bytes: opt1_read,
            lookup_components: opt1_components,
        },
        StorageOptionRow {
            option: "Option 3 (bucketed LSM, per-bucket trees)",
            bucket_move_read_bytes: opt3_read,
            lookup_components: opt3_components,
        },
    ]
}

/// One row of the balance-quality ablation.
#[derive(Debug, Clone)]
pub struct BalanceQualityRow {
    /// Bucket-size skew factor (largest bucket / smallest bucket).
    pub skew: u64,
    /// Load-balance factor (max/avg) of Algorithm 2.
    pub algorithm2: f64,
    /// Load-balance factor of naive round-robin assignment.
    pub round_robin: f64,
}

/// Ablation: Algorithm 2 vs. naive round-robin assignment under bucket-size
/// skew.
pub fn ablation_balance_quality(skews: &[u64]) -> Vec<BalanceQualityRow> {
    use dynahash_core::balance::{
        balance_assignment, load_balance_factor, BalanceInput, BucketLoad,
    };
    use dynahash_core::{BucketId, ClusterTopology, PartitionId};
    use std::collections::BTreeMap;

    let topo = ClusterTopology::uniform(4, 2);
    let parts = topo.partitions();
    skews
        .iter()
        .map(|&skew| {
            let buckets: Vec<BucketLoad> = (0..32u32)
                .map(|bits| BucketLoad {
                    bucket: BucketId::new(bits, 5),
                    size: 100 + (bits as u64 % 4) * (skew.saturating_sub(1)) * 100 / 3,
                    current: None,
                })
                .collect();
            let sizes: BTreeMap<BucketId, u64> =
                buckets.iter().map(|b| (b.bucket, b.size)).collect();
            let alg2 = balance_assignment(&BalanceInput {
                buckets: buckets.clone(),
                target: topo.clone(),
            })
            .expect("balance");
            let rr: BTreeMap<BucketId, PartitionId> = buckets
                .iter()
                .enumerate()
                .map(|(i, b)| (b.bucket, parts[i % parts.len()]))
                .collect();
            BalanceQualityRow {
                skew,
                algorithm2: load_balance_factor(&alg2, &sizes, &topo),
                round_robin: load_balance_factor(&rr, &sizes, &topo),
            }
        })
        .collect()
}

// --------------------------------------------------------------- formatting

/// Renders ingestion rows as a markdown table.
pub fn format_fig6(rows: &[IngestionRow]) -> String {
    let mut s =
        String::from("| nodes | scheme | ingestion time (sim s) | records |\n|---|---|---|---|\n");
    for r in rows {
        s.push_str(&format!(
            "| {} | {} | {:.3} | {} |\n",
            r.nodes,
            r.scheme,
            r.minutes * 60.0,
            r.records
        ));
    }
    s
}

/// Renders rebalance rows as a markdown table.
pub fn format_fig7(rows: &[RebalanceRow]) -> String {
    let mut s = String::from(
        "| nodes | scheme | rebalance time (sim s) | moved fraction |\n|---|---|---|---|\n",
    );
    for r in rows {
        s.push_str(&format!(
            "| {} | {} | {:.3} | {:.1}% |\n",
            r.nodes,
            r.scheme,
            r.minutes * 60.0,
            r.moved_fraction * 100.0
        ));
    }
    s
}

/// Renders concurrent-write rows as a markdown table.
pub fn format_fig7c(rows: &[ConcurrentWriteRow]) -> String {
    let mut s = String::from(
        "| write rate (krec/s) | rebalance time (sim s) | concurrent records |\n|---|---|---|\n",
    );
    for r in rows {
        s.push_str(&format!(
            "| {:.0} | {:.3} | {} |\n",
            r.write_rate_krps,
            r.minutes * 60.0,
            r.concurrent_records
        ));
    }
    s
}

/// Renders query rows as a markdown table with one line per query and one
/// column per scheme.
pub fn format_query_rows(rows: &[QueryRow]) -> String {
    let mut schemes: Vec<String> = rows.iter().map(|r| r.scheme.clone()).collect();
    schemes.dedup();
    let mut s = String::from("| query |");
    for sc in &schemes {
        s.push_str(&format!(" {sc} (sim s) |"));
    }
    s.push_str(" scan-heavy |\n|---|");
    for _ in &schemes {
        s.push_str("---|");
    }
    s.push_str("---|\n");
    for q in 1..=NUM_QUERIES {
        s.push_str(&format!("| q{q} |"));
        let mut heavy = false;
        for sc in &schemes {
            if let Some(r) = rows.iter().find(|r| r.query == q && &r.scheme == sc) {
                s.push_str(&format!(" {:.4} |", r.seconds));
                heavy = r.scan_heavy;
            } else {
                s.push_str(" - |");
            }
        }
        s.push_str(&format!(" {} |\n", if heavy { "yes" } else { "" }));
    }
    s
}

/// Checks that every query produced the same answer under every scheme in
/// the given rows; returns the offending query numbers (empty = all agree).
pub fn answer_mismatches(rows: &[QueryRow]) -> Vec<usize> {
    let mut bad = Vec::new();
    for q in 1..=NUM_QUERIES {
        let answers: Vec<f64> = rows
            .iter()
            .filter(|r| r.query == q)
            .map(|r| r.answer)
            .collect();
        if answers
            .windows(2)
            .any(|w| (w[0] - w[1]).abs() > 1e-6 * w[0].abs().max(1.0))
        {
            bad.push(q);
        }
    }
    bad
}

// ------------------------------------------------------ scale study (PR 7)

/// One row of the memory-scale study: resident bytes per record of the
/// inline-key `Entry` layout vs the legacy layout that kept every key on
/// the heap, measured with [`StorageFootprint`] accounting on a loaded
/// cluster (deterministic — no wall clock involved).
///
/// [`StorageFootprint`]: dynahash_lsm::entry::StorageFootprint
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Key shape of this row.
    pub label: &'static str,
    /// Live records measured.
    pub records: u64,
    /// Resident bytes of the current layout (struct + key heap + values).
    pub resident_bytes: u64,
    /// Resident bytes the legacy layout (every key heap-allocated) would
    /// hold for the same data.
    pub legacy_bytes: u64,
    /// `resident_bytes / records`.
    pub bytes_per_record: f64,
    /// `legacy_bytes / records` — the pre-PR baseline the gate compares
    /// against.
    pub legacy_bytes_per_record: f64,
    /// Fraction of keys stored inline (no heap allocation).
    pub inline_fraction: f64,
}

/// Loads one DynaHash dataset per key shape — 8-byte production-style keys
/// (inline) and 40-byte keys (heap spill) — through sessions, then reads
/// the cluster-wide [`Admin::storage_stats`] footprint for each.
///
/// [`Admin::storage_stats`]: dynahash_cluster::Admin::storage_stats
pub fn scale_study(cfg: &ExperimentConfig) -> Vec<ScaleRow> {
    use dynahash_cluster::DatasetSpec;
    use dynahash_lsm::entry::Key;
    use dynahash_lsm::Bytes;

    let records = (cfg.orders_per_node as u64) * 50;
    let nodes = 4;
    let mut cluster = cfg.cluster(nodes);
    let value = |i: u64| Bytes::from(vec![(i % 249) as u8; 24]);
    type KeyShape = (&'static str, fn(u64) -> Key);
    let shapes: [KeyShape; 2] = [
        ("short keys (8 B, inline)", Key::from_u64),
        ("long keys (40 B, heap)", |i| {
            let mut k = i.to_be_bytes().to_vec();
            k.resize(40, 0xab);
            Key::from_bytes(k)
        }),
    ];

    let mut rows = Vec::new();
    for (label, make_key) in shapes {
        let ds = cluster
            .create_dataset(DatasetSpec::new(
                format!("scale_{}", rows.len()),
                cfg.dynahash_scheme(nodes),
            ))
            .expect("create scale dataset");
        cluster
            .session(ds)
            .expect("scale session")
            .ingest(&mut cluster, (0..records).map(|i| (make_key(i), value(i))))
            .expect("scale ingest");
        let fp = cluster.admin().storage_stats(ds).expect("storage stats");
        rows.push(ScaleRow {
            label,
            records: fp.records,
            resident_bytes: fp.resident_bytes(),
            legacy_bytes: fp.legacy_resident_bytes(),
            bytes_per_record: fp.resident_bytes() as f64 / fp.records.max(1) as f64,
            legacy_bytes_per_record: fp.legacy_resident_bytes() as f64 / fp.records.max(1) as f64,
            inline_fraction: fp.inline_keys as f64 / fp.records.max(1) as f64,
        });
    }
    rows
}

/// Renders scale rows as a markdown table.
pub fn format_scale(rows: &[ScaleRow]) -> String {
    let mut s = String::from(
        "| keys | records | bytes/record | legacy bytes/record | inline keys |\n|---|---|---|---|---|\n",
    );
    for r in rows {
        s.push_str(&format!(
            "| {} | {} | {:.1} | {:.1} | {:.0}% |\n",
            r.label,
            r.records,
            r.bytes_per_record,
            r.legacy_bytes_per_record,
            r.inline_fraction * 100.0
        ));
    }
    s
}

/// Checks the PR 7 `scale` figure's gate. Returns the violations (empty =
/// gate passes). The accounting is deterministic, so the gate is exact: no
/// row may exceed the legacy (pre-PR) bytes-per-record baseline, and the
/// production 8-byte key shape must store every key inline and beat the
/// baseline strictly.
pub fn scale_gate_violations(rows: &[ScaleRow]) -> Vec<String> {
    let mut bad = Vec::new();
    if rows.is_empty() {
        bad.push("scale rows missing".to_string());
    }
    for r in rows {
        if r.records == 0 {
            bad.push(format!("{}: zero records measured", r.label));
        }
        if r.resident_bytes > r.legacy_bytes {
            bad.push(format!(
                "{}: resident {} bytes exceeds the legacy baseline {}",
                r.label, r.resident_bytes, r.legacy_bytes
            ));
        }
    }
    if let Some(short) = rows.iter().find(|r| r.label.starts_with("short")) {
        if short.inline_fraction < 1.0 {
            bad.push(format!(
                "short keys: only {:.1}% stored inline",
                short.inline_fraction * 100.0
            ));
        }
        if short.resident_bytes >= short.legacy_bytes {
            bad.push(format!(
                "short keys: resident {} bytes did not strictly beat the legacy \
                 baseline {}",
                short.resident_bytes, short.legacy_bytes
            ));
        }
    } else {
        bad.push("short-key scale row missing".to_string());
    }
    bad
}

// ------------------------------------------------------ fault study (PR 8)

/// One row of the `faults` figure: the same seeded rebalance (same data,
/// same topology change) driven under one fault regime, compared against
/// the fault-free oracle row.
#[derive(Debug, Clone)]
pub struct FaultRow {
    /// Fault regime of this row.
    pub label: &'static str,
    /// True when the job committed (the fault plane must never abort it).
    pub committed: bool,
    /// Simulated makespan of the rebalance.
    pub makespan: SimDuration,
    /// Transfer attempts retried after an injected transient failure.
    pub retries: u64,
    /// Moves rerouted or canceled by re-planning around a lost node.
    pub reroutes: u64,
    /// Live records after the rebalance.
    pub records: u64,
    /// FNV-1a checksum over the sorted (key, value) contents — placement
    /// may legally differ after a re-plan, record contents may not.
    pub checksum: u64,
}

/// FNV-1a over the dataset's sorted (key, value) pairs, via a fresh
/// session scan.
fn dataset_contents_checksum(cluster: &Cluster, ds: dynahash_cluster::DatasetId) -> (u64, u64) {
    let mut session = cluster.session(ds).expect("fault checksum session");
    let (contents, _) = session
        .collect_records(cluster)
        .expect("fault checksum scan");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut absorb = |bytes: &[u8]| {
        for b in bytes {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for (k, v) in &contents {
        absorb(k.as_slice());
        absorb(v.as_ref());
    }
    (contents.len() as u64, h)
}

/// Runs the identical seeded rebalance (grow by one node) under four fault
/// regimes: no schedule installed (the oracle), an installed-but-empty
/// schedule (must be byte-identical to the oracle — the fault-free gate),
/// transient ship failures capped below the retry budget (absorbed, same
/// contents, makespan pays the backoff), and the permanent loss of the new
/// node after the first wave (re-planned, committed, same contents).
pub fn fault_study(cfg: &ExperimentConfig) -> Vec<FaultRow> {
    use dynahash_cluster::{DatasetSpec, FaultSchedule, WaveFault};
    use dynahash_lsm::entry::Key;
    use dynahash_lsm::Bytes;

    let nodes = 4;
    let records = (cfg.orders_per_node as u64) * 40;
    let value = |i: u64| Bytes::from(vec![(i % 249) as u8; 24]);
    let regimes: [(&'static str, u8); 4] = [
        ("fault-free oracle", 0),
        ("empty schedule", 1),
        ("transient faults", 2),
        ("node loss", 3),
    ];

    let mut rows = Vec::new();
    for (label, regime) in regimes {
        let mut cluster = cfg.cluster(nodes);
        let ds = cluster
            .create_dataset(DatasetSpec::new("faults", cfg.dynahash_scheme(nodes)))
            .expect("create faults dataset");
        cluster
            .session(ds)
            .expect("faults session")
            .ingest(
                &mut cluster,
                (0..records).map(|i| (Key::from_u64(i), value(i))),
            )
            .expect("faults ingest");
        let new_node = cluster.add_node().expect("faults add_node");
        match regime {
            1 => cluster.set_fault_plane(FaultSchedule::none()),
            2 => cluster.set_fault_plane(FaultSchedule::seeded(0xfa_2026).with_transient(600, 2)),
            3 => cluster.set_fault_plane(
                FaultSchedule::seeded(0xfa_2026).with_wave_fault(0, WaveFault::Lose(new_node)),
            ),
            _ => {}
        }
        let target = cluster.topology().clone();
        let report = cluster
            .rebalance(
                ds,
                &target,
                RebalanceOptions::none().with_max_concurrent_moves(2),
            )
            .expect("the fault plane must never abort the rebalance");
        if regime == 3 {
            cluster
                .remove_lost_node(new_node)
                .expect("remove the lost node");
        }
        let (live, checksum) = dataset_contents_checksum(&cluster, ds);
        rows.push(FaultRow {
            label,
            committed: report.outcome == dynahash_core::RebalanceOutcome::Committed,
            makespan: report.elapsed,
            retries: report.retries,
            reroutes: report.reroutes,
            records: live,
            checksum,
        });
    }
    rows
}

/// Renders fault rows as a markdown table.
pub fn format_faults(rows: &[FaultRow]) -> String {
    let mut s = String::from(
        "| regime | committed | makespan (ms) | retries | reroutes | records | checksum |\n\
         |---|---|---|---|---|---|---|\n",
    );
    for r in rows {
        s.push_str(&format!(
            "| {} | {} | {:.3} | {} | {} | {} | {:#018x} |\n",
            r.label,
            r.committed,
            r.makespan.as_nanos() as f64 / 1e6,
            r.retries,
            r.reroutes,
            r.records,
            r.checksum
        ));
    }
    s
}

/// Checks the `faults` figure's gate. The comparisons are against the
/// oracle row and exact (the executor is deterministic): an empty schedule
/// must be byte-identical to no schedule, transients must be absorbed by
/// retry with identical final contents, and a node loss must commit via
/// re-planning — again with identical record contents.
pub fn fault_gate_violations(rows: &[FaultRow]) -> Vec<String> {
    let mut bad = Vec::new();
    let Some(oracle) = rows.iter().find(|r| r.label.starts_with("fault-free")) else {
        bad.push("fault-free oracle row missing".to_string());
        return bad;
    };
    for r in rows {
        if !r.committed {
            bad.push(format!("{}: the rebalance did not commit", r.label));
        }
        if r.records != oracle.records || r.checksum != oracle.checksum {
            bad.push(format!(
                "{}: contents diverged from the oracle ({} records, checksum \
                 {:#x}; oracle has {} and {:#x})",
                r.label, r.records, r.checksum, oracle.records, oracle.checksum
            ));
        }
    }
    if let Some(empty) = rows.iter().find(|r| r.label.starts_with("empty")) {
        if empty.makespan != oracle.makespan || empty.retries != 0 || empty.reroutes != 0 {
            bad.push(format!(
                "empty schedule is not byte-identical to the oracle \
                 (makespan {} vs {}, {} retries, {} reroutes)",
                empty.makespan.as_nanos(),
                oracle.makespan.as_nanos(),
                empty.retries,
                empty.reroutes
            ));
        }
    } else {
        bad.push("empty-schedule row missing".to_string());
    }
    if let Some(transient) = rows.iter().find(|r| r.label.starts_with("transient")) {
        if transient.retries == 0 {
            bad.push("transient regime injected no faults".to_string());
        }
        if transient.makespan < oracle.makespan {
            bad.push("transient regime was faster than the oracle".to_string());
        }
    } else {
        bad.push("transient row missing".to_string());
    }
    if let Some(loss) = rows.iter().find(|r| r.label.starts_with("node loss")) {
        if loss.reroutes == 0 {
            bad.push("node-loss regime re-planned nothing".to_string());
        }
    } else {
        bad.push("node-loss row missing".to_string());
    }
    bad
}

// ---------------------------------------------------- control study (PR 9)

/// Tick budget the armed control plane gets to converge in [`control_study`].
/// The loop typically needs two trigger cycles: the first auto-job balances
/// the heat-weighted load as of its trigger tick, and once the query heat
/// decays the residual byte imbalance resurfaces and a second cycle (after
/// the cooldown and hysteresis windows) settles it.
pub const CONTROL_CONVERGENCE_TICKS: u64 = 120;

/// One row of the `control` figure: the identical seeded workload — skewed
/// ingest, a two-key query hotspot, then two empty nodes joining — observed
/// under one control-plane regime.
#[derive(Debug, Clone)]
pub struct ControlRow {
    /// Control-plane regime of this row.
    pub label: &'static str,
    /// Control ticks executed (0 for the disarmed rows).
    pub ticks: u64,
    /// Rebalances auto-triggered.
    pub triggers: u64,
    /// Decisions suppressed by hysteresis or cooldown.
    pub suppressed: u64,
    /// Auto-triggered rebalances that committed.
    pub committed: u64,
    /// Hot buckets split over the heat budget.
    pub hot_splits: u64,
    /// Heat-weighted max-deviation imbalance right after the empty nodes
    /// joined (what the plane faces).
    pub imbalance_start: f64,
    /// Imbalance at the end of the row.
    pub imbalance_end: f64,
    /// The armed plane's imbalance threshold (copied into every row so the
    /// gate needs no out-of-band constant).
    pub threshold: f64,
    /// Most buckets any migration window shipped.
    pub max_window_buckets: usize,
    /// Most bytes any migration window shipped.
    pub max_window_bytes: u64,
    /// The budget's per-window bucket cap.
    pub budget_buckets: usize,
    /// The budget's per-window byte cap.
    pub budget_bytes: u64,
    /// Live records at the end.
    pub records: u64,
    /// FNV-1a checksum over the sorted (key, value) contents.
    pub checksum: u64,
    /// Resident storage bytes at the end.
    pub resident_bytes: u64,
}

/// Runs the identical seeded workload under three control regimes: heat
/// tracking never armed (the baseline), armed-then-disarmed before any work
/// (must be byte-identical to the baseline — the disarmed gate), and armed
/// with the decision loop ticking (must auto-split the hot buckets,
/// auto-trigger a migration onto the empty nodes after the hysteresis
/// window, respect the per-window budget, and converge below the threshold
/// within [`CONTROL_CONVERGENCE_TICKS`]).
pub fn control_study(cfg: &ExperimentConfig) -> Vec<ControlRow> {
    use dynahash_cluster::{ControlConfig, ControlPlane, DatasetSpec};
    use dynahash_lsm::entry::Key;
    use dynahash_lsm::Bytes;

    let nodes = 4;
    // Enough records that buckets are fine-grained relative to partitions —
    // the achievable post-rebalance imbalance is roughly one bucket's share
    // of a partition, and the gate needs that well below the threshold.
    let records = (cfg.orders_per_node as u64) * 160;
    let value = |i: u64| Bytes::from(vec![(i % 249) as u8; 24]);
    let control_config = ControlConfig::default();
    let regimes: [(&'static str, u8); 3] = [
        ("never armed", 0),
        ("armed then disarmed", 1),
        ("armed + decision loop", 2),
    ];

    let mut rows = Vec::new();
    for (label, regime) in regimes {
        let mut cluster = cfg.cluster(nodes);
        match regime {
            1 => {
                // Arm/disarm must leave no trace on anything measured below.
                cluster.set_heat_tracking(true);
                cluster.set_heat_tracking(false);
            }
            2 => cluster.set_heat_tracking(true),
            _ => {}
        }
        let ds = cluster
            .create_dataset(DatasetSpec::new("control", cfg.dynahash_scheme(nodes)))
            .expect("create control dataset");
        let mut session = cluster.session(ds).expect("control session");
        session
            .ingest(
                &mut cluster,
                (0..records).map(|i| (Key::from_u64(i), value(i))),
            )
            .expect("control ingest");
        // The query hotspot: two keys hammered hard enough that their
        // buckets cross the hot-bucket op budget when heat is armed.
        for _ in 0..2_000 {
            for key in [3u64, 11] {
                session.get(&cluster, &Key::from_u64(key)).expect("hot get");
            }
        }
        // Two empty nodes join; nobody moves data onto them except the
        // armed control plane.
        cluster.add_node().expect("control add_node");
        cluster.add_node().expect("control add_node");

        let imbalance_of = |cluster: &mut Cluster| {
            cluster
                .admin()
                .heat(ds)
                .expect("control heat report")
                .imbalance(control_config.op_weight_bytes)
        };
        let imbalance_start = imbalance_of(&mut cluster);

        let mut ticks = 0;
        let mut plane = (regime == 2).then(|| ControlPlane::new(control_config));
        if let Some(plane) = plane.as_mut() {
            while ticks < CONTROL_CONVERGENCE_TICKS {
                let report = plane.tick(&mut cluster).expect("control tick");
                ticks += 1;
                if !report.job_in_flight
                    && imbalance_of(&mut cluster) <= control_config.imbalance_threshold
                {
                    break;
                }
            }
        }

        let imbalance_end = imbalance_of(&mut cluster);
        let status = plane.as_ref().map(|p| p.status());
        let peak = status
            .as_ref()
            .map(|s| s.max_window_usage())
            .unwrap_or_default();
        let (live, checksum) = dataset_contents_checksum(&cluster, ds);
        let resident = cluster
            .admin()
            .storage_stats(ds)
            .map(|fp| fp.logical_bytes)
            .unwrap_or(0);
        rows.push(ControlRow {
            label,
            ticks,
            triggers: status.as_ref().map_or(0, |s| s.triggers),
            suppressed: status
                .as_ref()
                .map_or(0, |s| s.suppressed_hysteresis + s.suppressed_cooldown),
            committed: status.as_ref().map_or(0, |s| s.committed_jobs),
            hot_splits: status.as_ref().map_or(0, |s| s.hot_splits),
            imbalance_start,
            imbalance_end,
            threshold: control_config.imbalance_threshold,
            max_window_buckets: peak.buckets,
            max_window_bytes: peak.bytes,
            budget_buckets: control_config.budget.max_buckets_per_window,
            budget_bytes: control_config.budget.max_bytes_per_window,
            records: live,
            checksum,
            resident_bytes: resident,
        });
    }
    rows
}

/// Renders control rows as a markdown table.
pub fn format_control(rows: &[ControlRow]) -> String {
    let mut s = String::from(
        "| regime | ticks | triggers | suppressed | committed | hot splits | \
         imbalance start → end | peak window (buckets / bytes) | records | checksum |\n\
         |---|---|---|---|---|---|---|---|---|---|\n",
    );
    for r in rows {
        s.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {:.3} → {:.3} | {} / {} | {} | {:#018x} |\n",
            r.label,
            r.ticks,
            r.triggers,
            r.suppressed,
            r.committed,
            r.hot_splits,
            r.imbalance_start,
            r.imbalance_end,
            r.max_window_buckets,
            r.max_window_bytes,
            r.records,
            r.checksum
        ));
    }
    s
}

/// Checks the `control` figure's gate. Everything here is simulated time
/// and byte accounting — deterministic, so violations fail immediately:
/// the two disarmed rows must be identical in every measured dimension
/// (the disarmed data path is byte-identical to a build without the control
/// plane), and the armed row must converge below the threshold within the
/// tick budget, via at least one hysteresis-suppressed decision and one
/// committed auto-rebalance, never exceeding the per-window migration
/// budget — all while leaving record contents identical to the baseline.
pub fn control_gate_violations(rows: &[ControlRow]) -> Vec<String> {
    let mut bad = Vec::new();
    let Some(base) = rows.iter().find(|r| r.label.starts_with("never")) else {
        bad.push("never-armed baseline row missing".to_string());
        return bad;
    };
    if base.imbalance_start <= base.threshold {
        bad.push(format!(
            "baseline imbalance {:.3} does not exceed the threshold {:.3} — \
             the workload gives the plane nothing to do",
            base.imbalance_start, base.threshold
        ));
    }
    match rows.iter().find(|r| r.label.starts_with("armed then")) {
        Some(disarmed) => {
            let identical = disarmed.records == base.records
                && disarmed.checksum == base.checksum
                && disarmed.resident_bytes == base.resident_bytes
                && disarmed.imbalance_start == base.imbalance_start
                && disarmed.imbalance_end == base.imbalance_end
                && disarmed.triggers == 0
                && disarmed.hot_splits == 0;
            if !identical {
                bad.push(format!(
                    "arm/disarm left a trace: {disarmed:?} differs from the \
                     never-armed baseline {base:?}"
                ));
            }
        }
        None => bad.push("armed-then-disarmed row missing".to_string()),
    }
    match rows.iter().find(|r| r.label.starts_with("armed +")) {
        Some(armed) => {
            if armed.triggers == 0 {
                bad.push("armed plane never auto-triggered".to_string());
            }
            if armed.suppressed == 0 {
                bad.push("hysteresis never suppressed a decision".to_string());
            }
            if armed.committed == 0 {
                bad.push("no auto-triggered rebalance committed".to_string());
            }
            if armed.hot_splits == 0 {
                bad.push("the query hotspot split no buckets".to_string());
            }
            if armed.ticks > CONTROL_CONVERGENCE_TICKS {
                bad.push(format!(
                    "armed plane used {} ticks (budget {})",
                    armed.ticks, CONTROL_CONVERGENCE_TICKS
                ));
            }
            if armed.imbalance_end > armed.threshold {
                bad.push(format!(
                    "armed plane left imbalance {:.3} above the threshold {:.3}",
                    armed.imbalance_end, armed.threshold
                ));
            }
            if armed.max_window_buckets > armed.budget_buckets
                || armed.max_window_bytes > armed.budget_bytes
            {
                bad.push(format!(
                    "migration budget exceeded: window shipped {} buckets / {} \
                     bytes (budget {} / {})",
                    armed.max_window_buckets,
                    armed.max_window_bytes,
                    armed.budget_buckets,
                    armed.budget_bytes
                ));
            }
            if armed.records != base.records || armed.checksum != base.checksum {
                bad.push(format!(
                    "auto-rebalancing changed record contents ({} records, \
                     checksum {:#x}; baseline has {} and {:#x})",
                    armed.records, armed.checksum, base.records, base.checksum
                ));
            }
        }
        None => bad.push("armed row missing".to_string()),
    }
    bad
}

// --------------------------------------------------- recovery study (PR 10)

/// One row of the `recovery` figure: either a straggler arm (the identical
/// seeded scale-out with one badly slow source node, with and without
/// speculative re-execution) or a repair arm (a dataset that never lost a
/// node vs. its twin that lost an established node and was repaired from
/// the original feed).
#[derive(Debug, Clone)]
pub struct RecoveryRow {
    /// Arm of this row.
    pub label: &'static str,
    /// True when the rebalance/repair committed.
    pub committed: bool,
    /// Simulated makespan of the rebalance (or repair; zero for the
    /// loss-free oracle, which runs none).
    pub makespan: SimDuration,
    /// Transfer legs shipped a second time by speculation.
    pub speculated: u64,
    /// Speculative backups that strictly beat the original leg.
    pub speculation_wins: u64,
    /// Lost buckets a repair restored.
    pub repaired_buckets: u64,
    /// Live records at the end.
    pub records: u64,
    /// FNV-1a checksum over the sorted (key, value) contents.
    pub checksum: u64,
}

/// Runs the two recovery-plane experiments. Straggler arm: the identical
/// seeded scale-out with one source node slowed 50×, without and with
/// [`SpeculationPolicy`] — speculation must strictly shorten the makespan
/// while leaving record contents byte-identical. Repair arm: a dataset
/// whose cluster never loses a node vs. its twin that permanently loses an
/// established node (degrading that node's resident buckets) and is
/// repaired from the original feed — the repaired dataset must be
/// byte-identical to the never-lost oracle.
pub fn recovery_study(cfg: &ExperimentConfig) -> Vec<RecoveryRow> {
    use dynahash_cluster::{DatasetSpec, FaultSchedule, SpeculationPolicy};
    use dynahash_lsm::entry::Key;
    use dynahash_lsm::Bytes;

    let nodes = 4;
    let records = (cfg.orders_per_node as u64) * 40;
    let value = |i: u64| Bytes::from(vec![(i % 249) as u8; 24]);
    let load = |cluster: &mut Cluster| {
        let ds = cluster
            .create_dataset(DatasetSpec::new("recovery", cfg.dynahash_scheme(nodes)))
            .expect("create recovery dataset");
        cluster
            .session(ds)
            .expect("recovery session")
            .ingest(cluster, (0..records).map(|i| (Key::from_u64(i), value(i))))
            .expect("recovery ingest");
        ds
    };

    let mut rows = Vec::new();

    for (label, policy) in [
        ("speculation off", SpeculationPolicy::disabled()),
        ("speculation on", SpeculationPolicy::default()),
    ] {
        let mut cluster = cfg.cluster(nodes);
        let ds = load(&mut cluster);
        cluster.add_node().expect("recovery add_node");
        let target = cluster.topology().clone();
        let mut job =
            RebalanceJob::plan(&mut cluster, ds, &target, 4).expect("plan recovery rebalance");
        // Slow the node sourcing the first planned move, so the straggler
        // is guaranteed to sit on the critical path.
        let slow = cluster
            .node_of_partition(job.waves()[0][0].from)
            .expect("slow node of first move");
        cluster.set_fault_plane(FaultSchedule::seeded(0x5bec_2026).with_slow_node(slow, 50));
        job.set_speculation(policy);
        job.init(&mut cluster).expect("init recovery rebalance");
        while job.has_remaining_waves() {
            job.run_wave(&mut cluster).expect("recovery wave");
        }
        job.prepare(&mut cluster)
            .expect("prepare recovery rebalance");
        job.decide(&mut cluster).expect("decide recovery rebalance");
        job.commit(&mut cluster).expect("commit recovery rebalance");
        let speculated = job.speculated();
        let wins = job.speculation_wins();
        let report = job
            .finalize(&mut cluster)
            .expect("finalize recovery rebalance");
        cluster.clear_fault_plane();
        let (live, checksum) = dataset_contents_checksum(&cluster, ds);
        rows.push(RecoveryRow {
            label,
            committed: report.outcome == dynahash_core::RebalanceOutcome::Committed,
            makespan: report.elapsed,
            speculated,
            speculation_wins: wins,
            repaired_buckets: 0,
            records: live,
            checksum,
        });
    }

    let mut oracle = cfg.cluster(nodes);
    let ds = load(&mut oracle);
    let (live, checksum) = dataset_contents_checksum(&oracle, ds);
    rows.push(RecoveryRow {
        label: "never-lost oracle",
        committed: true,
        makespan: SimDuration::ZERO,
        speculated: 0,
        speculation_wins: 0,
        repaired_buckets: 0,
        records: live,
        checksum,
    });

    let mut cluster = cfg.cluster(nodes);
    let ds = load(&mut cluster);
    let victim = cluster.topology().nodes()[0];
    cluster.lose_node(victim).expect("lose an established node");
    let feed: Vec<(Key, Bytes)> = (0..records).map(|i| (Key::from_u64(i), value(i))).collect();
    let report = cluster
        .admin()
        .repair_dataset(ds, &feed)
        .expect("repair the degraded dataset");
    cluster
        .remove_lost_node(victim)
        .expect("remove the lost node");
    let (live, checksum) = dataset_contents_checksum(&cluster, ds);
    rows.push(RecoveryRow {
        label: "lost + repaired",
        committed: report.outcome == dynahash_core::RebalanceOutcome::Committed,
        makespan: report.elapsed,
        speculated: 0,
        speculation_wins: 0,
        repaired_buckets: report.buckets.len() as u64,
        records: live,
        checksum,
    });

    rows
}

/// Renders recovery rows as a markdown table.
pub fn format_recovery(rows: &[RecoveryRow]) -> String {
    let mut s = String::from(
        "| arm | committed | makespan (ms) | speculated | wins | repaired | \
         records | checksum |\n\
         |---|---|---|---|---|---|---|---|\n",
    );
    for r in rows {
        s.push_str(&format!(
            "| {} | {} | {:.3} | {} | {} | {} | {} | {:#018x} |\n",
            r.label,
            r.committed,
            r.makespan.as_nanos() as f64 / 1e6,
            r.speculated,
            r.speculation_wins,
            r.repaired_buckets,
            r.records,
            r.checksum
        ));
    }
    s
}

/// Checks the `recovery` figure's gate — everything is simulated time and
/// byte accounting, so the comparisons are exact: speculation must launch
/// backups that win and strictly shorten the makespan without touching
/// record contents, and the repaired dataset must be byte-identical to the
/// never-lost oracle.
pub fn recovery_gate_violations(rows: &[RecoveryRow]) -> Vec<String> {
    let mut bad = Vec::new();
    for r in rows {
        if !r.committed {
            bad.push(format!("{}: did not commit", r.label));
        }
    }
    match (
        rows.iter().find(|r| r.label == "speculation off"),
        rows.iter().find(|r| r.label == "speculation on"),
    ) {
        (Some(off), Some(on)) => {
            if off.speculated != 0 || off.speculation_wins != 0 {
                bad.push(format!(
                    "disabled policy still speculated ({} legs, {} wins)",
                    off.speculated, off.speculation_wins
                ));
            }
            if on.speculated == 0 {
                bad.push("speculation never launched a backup".to_string());
            }
            if on.speculation_wins == 0 {
                bad.push("no speculative backup beat the 50× straggler".to_string());
            }
            if on.makespan >= off.makespan {
                bad.push(format!(
                    "speculation did not shorten the makespan ({} ns vs {} ns)",
                    on.makespan.as_nanos(),
                    off.makespan.as_nanos()
                ));
            }
            if on.records != off.records || on.checksum != off.checksum {
                bad.push(format!(
                    "speculation changed record contents ({} records, checksum \
                     {:#x}; without it {} and {:#x})",
                    on.records, on.checksum, off.records, off.checksum
                ));
            }
        }
        _ => bad.push("a speculation arm is missing".to_string()),
    }
    match (
        rows.iter().find(|r| r.label == "never-lost oracle"),
        rows.iter().find(|r| r.label == "lost + repaired"),
    ) {
        (Some(oracle), Some(repaired)) => {
            if repaired.repaired_buckets == 0 {
                bad.push("losing an established node degraded no buckets".to_string());
            }
            if repaired.records != oracle.records || repaired.checksum != oracle.checksum {
                bad.push(format!(
                    "repair left the dataset different from the never-lost \
                     oracle ({} records, checksum {:#x}; oracle has {} and {:#x})",
                    repaired.records, repaired.checksum, oracle.records, oracle.checksum
                ));
            }
        }
        _ => bad.push("a repair arm is missing".to_string()),
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            orders_per_node: 60,
            partitions_per_node: 2,
        }
    }

    #[test]
    fn fig6_shapes_hold_at_tiny_scale() {
        let rows = fig6_ingestion(&tiny(), &[2]);
        assert_eq!(rows.len(), 3);
        // every scheme ingests the same number of records
        assert!(rows.windows(2).all(|w| w[0].records == w[1].records));
        // bucketing overhead stays small (within 2x of Hashing)
        let hashing = rows.iter().find(|r| r.scheme == "Hashing").unwrap().minutes;
        for r in &rows {
            assert!(r.minutes <= hashing * 2.0 + 1e-9, "{} too slow", r.scheme);
        }
        assert!(format_fig6(&rows).contains("DynaHash"));
    }

    #[test]
    fn fig7_bucketing_beats_hashing() {
        let rows = fig7_rebalance(&tiny(), &[2], RebalanceDirection::RemoveNode);
        let hashing = rows.iter().find(|r| r.scheme == "Hashing").unwrap();
        let dyna = rows.iter().find(|r| r.scheme == "DynaHash").unwrap();
        assert!(dyna.minutes < hashing.minutes);
        assert!(dyna.moved_fraction < hashing.moved_fraction);
        assert!(hashing.moved_fraction > 0.8);
        assert!(format_fig7(&rows).contains("StaticHash"));
    }

    #[test]
    fn fig7c_time_grows_with_write_rate() {
        let rows = fig7c_concurrent_writes(&tiny(), &[0.0, 2.0]);
        assert_eq!(rows.len(), 2);
        assert!(rows[1].minutes >= rows[0].minutes);
        assert!(rows[1].concurrent_records > 0);
        assert!(format_fig7c(&rows).contains("krec"));
    }

    #[test]
    fn parallel_waves_beat_serial_makespan() {
        let rows = rebalance_wave_scaling(&tiny(), &[1, 4]);
        assert_eq!(rows.len(), 2);
        let (serial, parallel) = (&rows[0], &rows[1]);
        assert_eq!(serial.buckets_moved, parallel.buckets_moved);
        assert!(parallel.waves < serial.waves);
        assert!(
            parallel.movement_minutes < serial.movement_minutes,
            "parallel movement {} !< serial {}",
            parallel.movement_minutes,
            serial.movement_minutes
        );
        assert!(parallel.minutes < serial.minutes);
        assert!(format_waves(&rows).contains("moves/wave"));
    }

    #[test]
    fn component_shipping_beats_record_movement() {
        let rows = move_policy_comparison(&tiny());
        assert_eq!(rows.len(), 2);
        let records = rows.iter().find(|r| r.policy == "Records").unwrap();
        let components = rows.iter().find(|r| r.policy == "Components").unwrap();
        assert_eq!(records.buckets_moved, components.buckets_moved);
        assert_eq!(records.records_moved, components.records_moved);
        assert_eq!(
            records.content_checksum, components.content_checksum,
            "both policies must leave byte-identical contents"
        );
        assert!(
            components.movement_minutes < records.movement_minutes,
            "component shipping must beat record movement: {} !< {}",
            components.movement_minutes,
            records.movement_minutes
        );
        assert!(components.minutes < records.minutes);
        assert!(format_move_policy(&rows).contains("Components"));
    }

    #[test]
    fn session_routing_study_passes_its_gate() {
        let rows = session_routing_study(&tiny());
        assert_eq!(rows.len(), 3);
        let violations = routing_gate_violations(&rows);
        // the wall-clock overhead arm can flake on a loaded CI box; every
        // deterministic condition must hold unconditionally
        let deterministic: Vec<&String> = violations
            .iter()
            .filter(|v| !v.contains("overhead"))
            .collect();
        assert!(
            deterministic.is_empty(),
            "gate violations: {deterministic:?}"
        );
        let after = rows.iter().find(|r| r.phase == "after").unwrap();
        assert!(after.redirects >= 1);
        assert!(
            after.delta_refreshes >= 1,
            "commits should fit the delta log"
        );
        assert!(format_routing(&rows).contains("redirects"));
    }

    #[test]
    fn directory_lookup_slot_array_beats_the_scan_at_scale() {
        let rows = directory_lookup_study(&[16, 256]);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.slot_ns_per_lookup > 0.0);
            assert!(r.scan_ns_per_lookup > 0.0);
        }
        let big = rows.iter().find(|r| r.buckets == 256).unwrap();
        assert!(
            big.slot_ns_per_lookup < big.scan_ns_per_lookup,
            "slot array must beat the scan at 256 buckets: {:.1} !< {:.1}",
            big.slot_ns_per_lookup,
            big.scan_ns_per_lookup
        );
        assert!(format_lookup(&rows).contains("speedup"));
    }

    #[test]
    fn deferred_install_study_passes_its_gate() {
        let deferred = deferred_install_study(&tiny());
        assert_eq!(deferred.len(), 2);
        let eager = deferred.iter().find(|r| r.mode == "Eager").unwrap();
        let lazy = deferred.iter().find(|r| r.mode == "Deferred").unwrap();
        assert_eq!(eager.records_moved, lazy.records_moved);
        assert_eq!(eager.index_checksum, lazy.index_checksum);
        assert!(lazy.warmed_records > 0, "nothing was actually deferred");
        assert_eq!(eager.warmed_records, 0);
        assert!(
            lazy.movement_minutes < eager.movement_minutes,
            "deferred install must beat eager on wave makespan: {} !< {}",
            lazy.movement_minutes,
            eager.movement_minutes
        );
        // the full gate (timing arm excluded) holds on the tiny config
        let violations = lookup_gate_violations(&[], &deferred);
        assert!(violations.is_empty(), "gate violations: {violations:?}");
        assert!(format_deferred_install(&deferred).contains("Deferred"));
    }

    #[test]
    fn ablation_storage_option3_reads_less() {
        let rows = ablation_storage_options(2000);
        assert_eq!(rows.len(), 2);
        assert!(rows[1].bucket_move_read_bytes < rows[0].bucket_move_read_bytes / 2);
    }

    #[test]
    fn ablation_balance_quality_improves_on_round_robin() {
        let rows = ablation_balance_quality(&[1, 4, 16]);
        for r in &rows {
            assert!(r.algorithm2 <= r.round_robin + 1e-9, "skew {}", r.skew);
        }
    }

    #[test]
    fn scale_study_gate_passes_and_inline_keys_save_memory() {
        let rows = scale_study(&tiny());
        let violations = scale_gate_violations(&rows);
        assert!(violations.is_empty(), "gate violations: {violations:?}");
        let short = &rows[0];
        // inline keys save exactly the key heap bytes: 8 per record
        assert_eq!(short.legacy_bytes - short.resident_bytes, short.records * 8);
        assert!(format_scale(&rows).contains("inline"));
    }

    #[test]
    fn recovery_study_passes_its_gate() {
        let rows = recovery_study(&tiny());
        assert_eq!(rows.len(), 4);
        let violations = recovery_gate_violations(&rows);
        assert!(violations.is_empty(), "gate violations: {violations:?}");
        let on = rows.iter().find(|r| r.label == "speculation on").unwrap();
        assert!(on.speculation_wins > 0);
        let repaired = rows.iter().find(|r| r.label == "lost + repaired").unwrap();
        assert!(repaired.repaired_buckets > 0);
        assert!(format_recovery(&rows).contains("never-lost oracle"));
    }

    #[test]
    fn control_study_passes_its_gate() {
        let rows = control_study(&tiny());
        assert_eq!(rows.len(), 3);
        let violations = control_gate_violations(&rows);
        assert!(violations.is_empty(), "gate violations: {violations:?}");
        let armed = rows
            .iter()
            .find(|r| r.label.starts_with("armed +"))
            .unwrap();
        assert!(armed.ticks < CONTROL_CONVERGENCE_TICKS, "no headroom left");
        assert!(format_control(&rows).contains("decision loop"));
    }
}
