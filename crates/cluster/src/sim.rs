//! The simulated hardware cost model.
//!
//! The paper's experiments ran on AWS i3.xlarge nodes with local SSDs and an
//! interconnection network; this reproduction replaces the hardware with a
//! deterministic cost model. Every storage and network operation is charged
//! simulated nanoseconds on the node that performs it, and the elapsed time
//! of a cluster-wide operation is the **maximum** over the participating
//! nodes — the "bottlenecked by the slowest node" behaviour that drives the
//! paper's results — plus any coordinator-side serial work.
//!
//! Only *relative* comparisons are meaningful (who wins and by how much),
//! not absolute values. The default constants are loosely calibrated to an
//! SSD-era machine: ~2 GB/s sequential read, ~1 GB/s write, ~1 GB/s network,
//! a few microseconds of CPU per record parsed.

use std::collections::BTreeMap;
use std::ops::{Add, AddAssign};

use dynahash_core::NodeId;

/// A simulated duration, stored in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// Zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// From whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// As nanoseconds.
    pub fn as_nanos(&self) -> u64 {
        self.0
    }

    /// As fractional seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// As fractional minutes (the unit used by the paper's rebalance plots).
    pub fn as_minutes_f64(&self) -> f64 {
        self.as_secs_f64() / 60.0
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

/// The hardware cost constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// CPU time to parse and route one ingested record (ns). Ingestion in
    /// AsterixDB is CPU-heavy because of record parsing (Section VI-B).
    pub cpu_ns_per_ingested_record: u64,
    /// CPU time per record touched by query operators (filter/aggregate), ns.
    pub cpu_ns_per_query_record: u64,
    /// Extra CPU per record for merge-sorting bucketed scan results when
    /// primary-key order is required (priority-queue overhead), ns.
    pub cpu_ns_per_merge_sorted_record: u64,
    /// CPU per record for building secondary-index entries at a rebalance
    /// destination (on-the-fly rebuild), ns.
    pub cpu_ns_per_index_rebuild_record: u64,
    /// CPU per record for *re-materialising* records during a record-level
    /// bucket move: merging components at the source, then re-sorting,
    /// re-inserting into Bloom filters, and rebuilding the primary component
    /// at the destination. Component-level shipping skips this entirely —
    /// sealed components move as whole files (Section IV) — which is what
    /// makes the `MovePolicy::Components` path measurably faster.
    pub cpu_ns_per_rematerialized_record: u64,
    /// Fixed per-component overhead of shipping a sealed component whole
    /// (open/close, manifest update at the destination), ns.
    pub component_ship_overhead_ns: u64,
    /// Sequential disk read cost, ns per byte (~2 GB/s → 0.5 ns/byte).
    pub disk_read_ns_per_byte: u64,
    /// Sequential disk write cost, ns per byte (~1 GB/s → 1 ns/byte).
    pub disk_write_ns_per_byte: u64,
    /// Network transfer cost, ns per byte (~1 GB/s → 1 ns/byte).
    pub network_ns_per_byte: u64,
    /// Fixed per-message network latency, ns.
    pub network_latency_ns: u64,
    /// Fixed coordinator overhead per distributed job (compile + dispatch), ns.
    pub job_overhead_ns: u64,
    /// CPU cost per byte merged (LSM merges are CPU- and IO-bound), ns.
    pub merge_cpu_ns_per_byte: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Constants are scaled so that *byte-proportional* work dominates
        // fixed per-message overheads even at the reduced data sizes the
        // simulation runs at; this keeps the relative shapes of the paper's
        // figures intact (the paper's clusters store ~1000x more data, where
        // per-bucket RPC latencies are negligible).
        CostModel {
            cpu_ns_per_ingested_record: 20_000,
            cpu_ns_per_query_record: 1_000,
            cpu_ns_per_merge_sorted_record: 400,
            cpu_ns_per_index_rebuild_record: 4_000,
            cpu_ns_per_rematerialized_record: 4_000,
            component_ship_overhead_ns: 2_000,
            disk_read_ns_per_byte: 10,
            disk_write_ns_per_byte: 20,
            network_ns_per_byte: 25,
            network_latency_ns: 20_000,
            job_overhead_ns: 2_000_000,
            merge_cpu_ns_per_byte: 5,
        }
    }
}

impl CostModel {
    /// Cost of reading `bytes` sequentially from disk.
    pub fn disk_read(&self, bytes: u64) -> SimDuration {
        SimDuration(bytes * self.disk_read_ns_per_byte)
    }

    /// Cost of writing `bytes` sequentially to disk.
    pub fn disk_write(&self, bytes: u64) -> SimDuration {
        SimDuration(bytes * self.disk_write_ns_per_byte)
    }

    /// Cost of shipping `bytes` over the network (one message).
    pub fn network(&self, bytes: u64) -> SimDuration {
        SimDuration(bytes * self.network_ns_per_byte + self.network_latency_ns)
    }

    /// CPU cost of ingesting `records` records.
    pub fn ingest_cpu(&self, records: u64) -> SimDuration {
        SimDuration(records * self.cpu_ns_per_ingested_record)
    }

    /// CPU cost of query operators over `records` records with a relative
    /// `weight` (1.0 = a plain filter/aggregate pass).
    pub fn query_cpu(&self, records: u64, weight: f64) -> SimDuration {
        SimDuration((records as f64 * self.cpu_ns_per_query_record as f64 * weight) as u64)
    }

    /// CPU cost of merge-sorting `records` records from multiple bucket scans.
    pub fn merge_sort_cpu(&self, records: u64) -> SimDuration {
        SimDuration(records * self.cpu_ns_per_merge_sorted_record)
    }

    /// CPU cost of rebuilding secondary-index entries for `records` records.
    pub fn index_rebuild_cpu(&self, records: u64) -> SimDuration {
        SimDuration(records * self.cpu_ns_per_index_rebuild_record)
    }

    /// CPU cost of re-materialising `records` records during a record-level
    /// bucket move (merge at the source, or sort + Bloom + component build
    /// at the destination — charged once per side).
    pub fn rematerialize_cpu(&self, records: u64) -> SimDuration {
        SimDuration(records * self.cpu_ns_per_rematerialized_record)
    }

    /// Fixed cost of shipping `components` sealed components whole.
    pub fn component_ship_overhead(&self, components: u64) -> SimDuration {
        SimDuration(components * self.component_ship_overhead_ns)
    }

    /// Cost of merge work that read and wrote the given byte counts.
    pub fn merge_cost(&self, bytes_read: u64, bytes_written: u64) -> SimDuration {
        self.disk_read(bytes_read)
            + self.disk_write(bytes_written)
            + SimDuration((bytes_read + bytes_written) * self.merge_cpu_ns_per_byte)
    }
}

/// A per-node timeline: accumulates simulated work per node and reports the
/// cluster-wide elapsed time (the slowest node).
#[derive(Debug, Clone, Default)]
pub struct NodeTimeline {
    per_node: BTreeMap<NodeId, SimDuration>,
    coordinator: SimDuration,
}

impl NodeTimeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds work to a node.
    pub fn charge(&mut self, node: NodeId, cost: SimDuration) {
        *self.per_node.entry(node).or_default() += cost;
    }

    /// Adds serial coordinator-side work (not parallelised across nodes).
    pub fn charge_coordinator(&mut self, cost: SimDuration) {
        self.coordinator += cost;
    }

    /// The work charged to a node so far.
    pub fn node_time(&self, node: NodeId) -> SimDuration {
        self.per_node.get(&node).copied().unwrap_or_default()
    }

    /// The coordinator-side time.
    pub fn coordinator_time(&self) -> SimDuration {
        self.coordinator
    }

    /// The busiest node's time.
    pub fn max_node_time(&self) -> SimDuration {
        self.per_node.values().copied().max().unwrap_or_default()
    }

    /// The cluster-wide elapsed time: slowest node plus coordinator work.
    pub fn elapsed(&self) -> SimDuration {
        self.max_node_time() + self.coordinator
    }

    /// Per-node breakdown (sorted by node id).
    pub fn breakdown(&self) -> Vec<(NodeId, SimDuration)> {
        self.per_node.iter().map(|(n, d)| (*n, *d)).collect()
    }

    /// Merges another timeline into this one (phases executed back to back).
    pub fn extend(&mut self, other: &NodeTimeline) {
        for (n, d) in &other.per_node {
            self.charge(*n, *d);
        }
        self.coordinator += other.coordinator;
    }
}

/// Accumulates the simulated elapsed time of a sequence of *parallel phases*
/// (the step executor's waves). Each recorded phase contributes its makespan
/// — the slowest node of that phase, via [`NodeTimeline::elapsed`] — rather
/// than folding into one global per-node sum, because wave `k + 1` only
/// starts after every move of wave `k` has finished. Wider waves therefore
/// finish in fewer, barely-longer phases and the clock advances less.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WaveClock {
    elapsed: SimDuration,
    waves: usize,
}

impl WaveClock {
    /// Creates a clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed phase: the clock advances by its makespan.
    pub fn record_wave(&mut self, wave: &NodeTimeline) {
        self.elapsed += wave.elapsed();
        self.waves += 1;
    }

    /// Total simulated time across all recorded phases.
    pub fn elapsed(&self) -> SimDuration {
        self.elapsed
    }

    /// Number of phases recorded.
    pub fn waves(&self) -> usize {
        self.waves
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_conversions() {
        let d = SimDuration::from_secs(90);
        assert_eq!(d.as_nanos(), 90_000_000_000);
        assert!((d.as_minutes_f64() - 1.5).abs() < 1e-9);
        assert_eq!(
            SimDuration::from_nanos(5) + SimDuration::from_nanos(7),
            SimDuration(12)
        );
        assert_eq!(SimDuration(10).max(SimDuration(3)), SimDuration(10));
        assert_eq!(
            SimDuration(3).saturating_sub(SimDuration(10)),
            SimDuration(0)
        );
    }

    #[test]
    fn cost_model_scales_linearly() {
        let m = CostModel::default();
        assert_eq!(m.disk_read(1000).as_nanos(), 1000 * m.disk_read_ns_per_byte);
        assert!(m.network(0).as_nanos() >= m.network_latency_ns);
        assert_eq!(
            m.ingest_cpu(10).as_nanos(),
            10 * m.cpu_ns_per_ingested_record
        );
        let light = m.query_cpu(1000, 1.0);
        let heavy = m.query_cpu(1000, 3.0);
        assert_eq!(heavy.as_nanos(), 3 * light.as_nanos());
    }

    #[test]
    fn timeline_elapsed_is_slowest_node_plus_coordinator() {
        let mut t = NodeTimeline::new();
        t.charge(NodeId(0), SimDuration::from_secs(10));
        t.charge(NodeId(1), SimDuration::from_secs(30));
        t.charge(NodeId(1), SimDuration::from_secs(5));
        t.charge_coordinator(SimDuration::from_secs(1));
        assert_eq!(t.node_time(NodeId(1)), SimDuration::from_secs(35));
        assert_eq!(t.max_node_time(), SimDuration::from_secs(35));
        assert_eq!(t.elapsed(), SimDuration::from_secs(36));
        assert_eq!(t.breakdown().len(), 2);
    }

    #[test]
    fn wave_clock_sums_makespans_not_node_totals() {
        // Two waves touching the same node: a single timeline would report
        // max-over-nodes of the *sum* (20s); the clock reports 10s + 10s too.
        // But two waves on DIFFERENT nodes still serialize (10s + 10s),
        // whereas one wave containing both runs them in parallel (10s).
        let mut clock = WaveClock::new();
        let mut w1 = NodeTimeline::new();
        w1.charge(NodeId(0), SimDuration::from_secs(10));
        let mut w2 = NodeTimeline::new();
        w2.charge(NodeId(1), SimDuration::from_secs(10));
        clock.record_wave(&w1);
        clock.record_wave(&w2);
        assert_eq!(clock.elapsed(), SimDuration::from_secs(20));
        assert_eq!(clock.waves(), 2);

        let mut parallel = WaveClock::new();
        let mut both = NodeTimeline::new();
        both.charge(NodeId(0), SimDuration::from_secs(10));
        both.charge(NodeId(1), SimDuration::from_secs(10));
        parallel.record_wave(&both);
        assert_eq!(parallel.elapsed(), SimDuration::from_secs(10));
        assert!(parallel.elapsed() < clock.elapsed());
    }

    #[test]
    fn timelines_compose() {
        let mut a = NodeTimeline::new();
        a.charge(NodeId(0), SimDuration::from_secs(10));
        let mut b = NodeTimeline::new();
        b.charge(NodeId(0), SimDuration::from_secs(2));
        b.charge(NodeId(1), SimDuration::from_secs(20));
        b.charge_coordinator(SimDuration::from_secs(3));
        a.extend(&b);
        assert_eq!(a.node_time(NodeId(0)), SimDuration::from_secs(12));
        assert_eq!(a.elapsed(), SimDuration::from_secs(23));
    }
}
