//! Repeated-crash storms over the step-driven rebalance executor.
//!
//! The recovery unit tests walk the paper's six failure cases one at a
//! time; this harness is the blunt version: at *every* step boundary of the
//! driver loop it crashes a seeded-randomly chosen node **twice in a row**
//! (crash, recover, crash, recover), and separately injects a permanent
//! node loss after every wave boundary, asserting that
//!
//! * the job always reaches a terminal outcome (commit or abort — never a
//!   wedged state),
//! * commit/abort and `replan_wave` are idempotent under repetition, and
//! * `check_rebalance_integrity` finds zero violations afterwards.
//!
//! Everything is seeded: a failure replays exactly from the printed seed.

use dynahash_cluster::{
    Cluster, ClusterConfig, CostModel, DatasetId, DatasetSpec, FaultSchedule, RebalanceJob,
    RebalanceOptions, StepPoint, WaveFault,
};
use dynahash_core::{NodeId, RebalanceOutcome, Scheme};
use dynahash_lsm::entry::Key;
use dynahash_lsm::rng::SplitMix64;
use dynahash_lsm::Bytes;

const SEED: u64 = 0xfa57_2026;

fn loaded(nodes: u32, n: u64) -> (Cluster, DatasetId) {
    let mut cluster = Cluster::with_config(
        nodes,
        ClusterConfig {
            partitions_per_node: 2,
            cost_model: CostModel::default(),
        },
    );
    let ds = cluster
        .create_dataset(DatasetSpec::new(
            "storm",
            Scheme::StaticHash { num_buckets: 32 },
        ))
        .unwrap();
    let records: Vec<(Key, Bytes)> = (0..n)
        .map(|i| (Key::from_u64(i), Bytes::from(vec![(i % 249) as u8; 40])))
        .collect();
    let mut session = cluster.session(ds).unwrap();
    session.ingest(&mut cluster, records).unwrap();
    (cluster, ds)
}

const POINTS: &[StepPoint] = &[
    StepPoint::AfterPlan,
    StepPoint::AfterInit,
    StepPoint::AfterEveryWave,
    StepPoint::BeforePrepare,
    StepPoint::AfterPrepare,
    StepPoint::AfterCommitLog,
    StepPoint::BeforeFinalize,
];

#[test]
fn double_crash_storm_at_every_step_point_commits_with_integrity() {
    let mut rng = SplitMix64::seed_from_u64(SEED);
    for &point in POINTS {
        for trial in 0..2u32 {
            let (mut cluster, ds) = loaded(3, 1500);
            cluster.add_node().unwrap();
            let target = cluster.topology().clone();
            let victim = NodeId(rng.gen_range(0..4) as u32);
            let ctx = format!("point {point:?}, trial {trial}, victim {victim}");
            let report = cluster
                .rebalance(
                    ds,
                    &target,
                    RebalanceOptions::none()
                        .with_max_concurrent_moves(2)
                        .with_hook(point, move |cluster, _job| {
                            // The same node dies twice in a row; the driver
                            // must absorb both (commit tasks and cleanups
                            // are idempotent; lost transfers re-ship from
                            // the metadata log).
                            for _ in 0..2 {
                                let _ = cluster.crash_node(victim);
                                cluster.recover_all_nodes();
                            }
                            Ok(())
                        }),
                )
                .unwrap_or_else(|e| panic!("storm must not wedge the job ({ctx}): {e}"));
            assert_eq!(report.outcome, RebalanceOutcome::Committed, "{ctx}");
            assert_eq!(cluster.dataset_len(ds).unwrap(), 1500, "{ctx}");
            cluster
                .check_rebalance_integrity(ds, report.rebalance_id)
                .unwrap_or_else(|e| panic!("integrity violation ({ctx}): {e}"));
        }
    }
}

#[test]
fn losing_the_new_node_after_every_wave_boundary_commits_without_abort() {
    // Serial waves so every wave boundary exists for every trial; the loss
    // hits the newly added node (a pure destination), so re-planning cancels
    // its moves and the job commits with zero data loss.
    for wave in 0..3u64 {
        let (mut cluster, ds) = loaded(3, 1500);
        let new_node = cluster.add_node().unwrap();
        cluster.set_fault_plane(
            FaultSchedule::seeded(SEED ^ wave).with_wave_fault(wave, WaveFault::Lose(new_node)),
        );
        let target = cluster.topology().clone();
        let report = cluster
            .rebalance(ds, &target, RebalanceOptions::none())
            .unwrap_or_else(|e| panic!("loss after wave {wave} must re-plan, not abort: {e}"));
        assert_eq!(report.outcome, RebalanceOutcome::Committed, "wave {wave}");
        assert!(report.reroutes > 0, "wave {wave}: loss must cause reroutes");
        assert!(
            cluster.fault_stats().lost_buckets.is_empty(),
            "wave {wave}: a pure destination holds no sole copies"
        );
        assert_eq!(cluster.dataset_len(ds).unwrap(), 1500, "wave {wave}");
        cluster.remove_lost_node(new_node).unwrap();
        cluster
            .check_rebalance_integrity(ds, report.rebalance_id)
            .unwrap_or_else(|e| panic!("integrity violation (wave {wave}): {e}"));
        assert!(cluster.admin().health().all_healthy(), "wave {wave}");
    }
}

#[test]
fn replanning_twice_in_a_row_is_idempotent() {
    let (mut cluster, ds) = loaded(3, 2000);
    let new_node = cluster.add_node().unwrap();
    let target = cluster.topology().clone();
    let mut job = RebalanceJob::plan(&mut cluster, ds, &target, 2).unwrap();
    job.init(&mut cluster).unwrap();
    job.run_wave(&mut cluster).unwrap();
    cluster.lose_node(new_node).unwrap();
    let first = job.replan_wave(&mut cluster).unwrap();
    assert_eq!(first.lost_nodes, vec![new_node]);
    assert!(first.rerouted > 0);
    // The lost node left the participant set: a second re-plan (and a
    // third) finds nothing to do.
    let second = job.replan_wave(&mut cluster).unwrap();
    assert!(second.is_noop(), "second replan must be a noop: {second:?}");
    let third = job.replan_wave(&mut cluster).unwrap();
    assert!(third.is_noop());
    while job.has_remaining_waves() {
        job.run_wave(&mut cluster).unwrap();
    }
    job.prepare(&mut cluster).unwrap();
    assert_eq!(
        job.decide(&mut cluster).unwrap(),
        RebalanceOutcome::Committed
    );
    job.commit(&mut cluster).unwrap();
    let report = job.finalize(&mut cluster).unwrap();
    assert_eq!(report.outcome, RebalanceOutcome::Committed);
    assert_eq!(cluster.dataset_len(ds).unwrap(), 2000);
    cluster.remove_lost_node(new_node).unwrap();
    cluster
        .check_rebalance_integrity(ds, report.rebalance_id)
        .unwrap();
}

#[test]
fn double_loss_of_two_destinations_still_commits() {
    // Scale from 2 to 4 nodes, then lose *both* new nodes at different wave
    // boundaries. Every move cancels back to its live source and the job
    // commits as a (near-)noop instead of aborting.
    let (mut cluster, ds) = loaded(2, 1500);
    let n2 = cluster.add_node().unwrap();
    let n3 = cluster.add_node().unwrap();
    cluster.set_fault_plane(
        FaultSchedule::seeded(SEED)
            .with_wave_fault(0, WaveFault::Lose(n2))
            .with_wave_fault(1, WaveFault::Lose(n3)),
    );
    let target = cluster.topology().clone();
    let report = cluster
        .rebalance(ds, &target, RebalanceOptions::none())
        .expect("double loss must re-plan, not abort");
    assert_eq!(report.outcome, RebalanceOutcome::Committed);
    assert_eq!(cluster.dataset_len(ds).unwrap(), 1500);
    cluster.remove_lost_node(n2).unwrap();
    cluster.remove_lost_node(n3).unwrap();
    cluster
        .check_rebalance_integrity(ds, report.rebalance_id)
        .unwrap();
    assert_eq!(cluster.fault_stats().lost_nodes, vec![n2, n3]);
}
