//! Storage partitions.
//!
//! A partition is the unit of storage and parallelism inside a Node
//! Controller. For each dataset it holds a **bucketed primary index**, a
//! **primary-key index** (keys only, for COUNT(*) and uniqueness checks), and
//! the dataset's **local secondary indexes** (Section II-C). The partition
//! also implements both sides of the rebalance data-movement phase.

use std::collections::BTreeMap;
use std::sync::Arc;

use dynahash_core::{PartitionId, SecondaryRebuild};
use dynahash_lsm::{
    BucketId, BucketedConfig, BucketedLsmTree, Component, Entry, Key, LazyMergeIter, LsmConfig,
    LsmTree, RefSource, ScanOrder, SecondaryEntry, SecondaryIndex, StorageMetrics, Value,
};

use crate::dataset::{DatasetId, DatasetSpec, SecondaryIndexDef};
use crate::ClusterError;

/// Appends the secondary-index entries `value` yields for `key` under every
/// index definition into the per-index accumulators (`out[i]` belongs to
/// `defs[i]`). Shared by both rebalance transfer paths so the Records and
/// Components policies can never diverge in how they rebuild indexes.
fn collect_secondary_entries(
    defs: &[SecondaryIndexDef],
    key: &Key,
    value: &Value,
    out: &mut [Vec<SecondaryEntry>],
) {
    for (def, entries) in defs.iter().zip(out.iter_mut()) {
        if let Some(secondary) = (def.extractor)(value) {
            entries.push(SecondaryEntry {
                secondary,
                primary: key.clone(),
            });
        }
    }
}

/// Whether a received bucket's secondary-index entries have been
/// materialized at this partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecondaryState {
    /// The bucket's secondary entries are fully materialized (eager install,
    /// record-level load, or an already-warmed deferred install).
    Ready,
    /// The bucket was installed from shipped components without rebuilding
    /// its secondary entries; the rebuild runs on the first `index_scan`
    /// touching the dataset or an explicit `warm_indexes` call.
    Deferred,
}

/// Per-dataset storage inside one partition.
pub struct PartitionDataset {
    /// The bucketed primary index (Option 3 storage).
    pub primary: BucketedLsmTree,
    /// The primary-key index (keys only, all buckets together).
    pub primary_key_index: LsmTree,
    /// Local secondary indexes (Option 1 storage, lazy cleanup).
    pub secondaries: Vec<SecondaryIndex>,
    defs: Vec<SecondaryIndexDef>,
    /// Shipped-component handles of *pending* buckets installed under
    /// [`SecondaryRebuild::Deferred`]: the base secondary entries of these
    /// buckets have not been built. Dropped with the pending bucket on
    /// abort/crash; promoted to `deferred_installed` at commit.
    deferred_pending: BTreeMap<BucketId, Vec<Component>>,
    /// Committed buckets still awaiting their deferred secondary rebuild.
    /// The stashed handles are `Arc` clones of the shipped components, so
    /// later primary merges cannot disturb the base data the rebuild reads.
    deferred_installed: BTreeMap<BucketId, Vec<Component>>,
}

impl std::fmt::Debug for PartitionDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartitionDataset")
            .field("buckets", &self.primary.num_buckets())
            .field("secondaries", &self.secondaries.len())
            .finish()
    }
}

impl PartitionDataset {
    fn new(
        spec: &DatasetSpec,
        initial_buckets: Vec<BucketId>,
        metrics: Arc<StorageMetrics>,
    ) -> Self {
        let lsm = LsmConfig::with_memtable_budget(spec.memtable_budget_bytes);
        let bucketed_cfg = BucketedConfig {
            lsm: lsm.clone(),
            max_bucket_size_bytes: spec.scheme.max_bucket_size_bytes().map(|b| b as usize),
            max_depth: 20,
        };
        let secondaries = spec
            .secondary_indexes
            .iter()
            .map(|d| SecondaryIndex::new(d.name.clone(), lsm.clone(), Arc::clone(&metrics)))
            .collect();
        PartitionDataset {
            primary: BucketedLsmTree::new(bucketed_cfg, initial_buckets, Arc::clone(&metrics)),
            primary_key_index: LsmTree::new(lsm, metrics),
            secondaries,
            defs: spec.secondary_indexes.clone(),
            deferred_pending: BTreeMap::new(),
            deferred_installed: BTreeMap::new(),
        }
    }

    /// Ingests one record: primary index, primary-key index, and every
    /// secondary index are updated.
    pub fn ingest(&mut self, key: Key, value: Value) -> Result<(), ClusterError> {
        for (def, idx) in self.defs.iter().zip(self.secondaries.iter_mut()) {
            if let Some(secondary) = (def.extractor)(&value) {
                idx.insert(secondary, key.clone());
            }
        }
        self.primary_key_index
            .put(key.clone(), dynahash_lsm::Bytes::new());
        self.primary
            .insert(key, value)
            .map_err(ClusterError::Storage)?;
        Ok(())
    }

    /// Point lookup in the primary index.
    pub fn get(&self, key: &Key) -> Option<Value> {
        self.primary.get(key)
    }

    /// Deletes one record: a tombstone in the primary index, a delete in the
    /// primary-key index, and — driven by the old payload — deletes of the
    /// record's secondary entries, so index scans never return phantom hits
    /// for deleted records. Returns the payload the record held, if it was
    /// live.
    pub fn delete(&mut self, key: &Key) -> Result<Option<Value>, ClusterError> {
        let old = self.primary.get(key);
        if let Some(old) = &old {
            for (def, idx) in self.defs.iter().zip(self.secondaries.iter_mut()) {
                if let Some(secondary) = (def.extractor)(old) {
                    idx.delete(secondary, key.clone());
                }
            }
        }
        self.primary_key_index.delete(key.clone());
        self.primary
            .delete(key.clone())
            .map_err(ClusterError::Storage)?;
        Ok(old)
    }

    /// Full scan of the primary index.
    pub fn scan(&self, order: ScanOrder) -> Vec<Entry> {
        self.primary.scan(order)
    }

    /// Number of live records.
    pub fn live_len(&self) -> usize {
        self.primary.live_len()
    }

    /// Finds a secondary index by name.
    pub fn secondary_mut(&mut self, name: &str) -> Option<&mut SecondaryIndex> {
        self.secondaries.iter_mut().find(|s| s.name == name)
    }

    /// True if a secondary index with this name exists (cheap existence
    /// check callers use before paying for a deferred warm).
    pub fn has_secondary_index(&self, name: &str) -> bool {
        self.secondaries.iter().any(|s| s.name == name)
    }

    /// True if the dataset has any secondary indexes at all (cost accounting
    /// charges an index rebuild only when there is something to rebuild).
    pub fn has_secondary_indexes(&self) -> bool {
        !self.defs.is_empty()
    }

    /// Logical bytes of the primary index (what a rebalance would move).
    pub fn primary_storage_bytes(&self) -> usize {
        self.primary.logical_size_bytes()
    }

    /// Total storage bytes including secondary indexes and the pk index.
    pub fn total_storage_bytes(&self) -> usize {
        self.primary.storage_bytes()
            + self.primary_key_index.storage_bytes()
            + self
                .secondaries
                .iter()
                .map(|s| s.storage_bytes())
                .sum::<usize>()
    }

    /// Per-bucket primary sizes (reported to the CC for Algorithm 2).
    pub fn bucket_sizes(&self) -> Vec<(BucketId, u64)> {
        self.primary
            .bucket_sizes()
            .into_iter()
            .map(|(b, s)| (b, s as u64))
            .collect()
    }

    /// Flushes all memory components (primary buckets, pk index, secondaries).
    pub fn flush_all(&mut self) {
        self.primary.flush_all();
        self.primary_key_index.flush();
        for s in self.secondaries.iter_mut() {
            s.flush();
        }
    }

    /// Runs merge policies everywhere. Returns the number of merges.
    pub fn run_merges(&mut self) -> usize {
        let mut n = self.primary.run_merges();
        n += self.primary_key_index.run_merges();
        for s in self.secondaries.iter_mut() {
            n += s.run_merges();
        }
        n
    }

    // --------------------------------------------------- rebalance source side

    /// Snapshot + scan of a moving bucket (flushes its memory component so
    /// the snapshot covers all writes before the rebalance start time).
    pub fn scan_bucket_for_move(&mut self, bucket: BucketId) -> Result<Vec<Entry>, ClusterError> {
        self.primary
            .snapshot_bucket(bucket)
            .map_err(ClusterError::Storage)?;
        self.primary
            .scan_bucket(bucket)
            .map_err(ClusterError::Storage)
    }

    /// Snapshot + component-level ship of a moving bucket: flushes the
    /// bucket's memory component, then hands out its sealed components as
    /// cheap shipped handles (no per-record merge, no Bloom rebuild).
    pub fn ship_bucket_components(
        &mut self,
        bucket: BucketId,
    ) -> Result<Vec<Component>, ClusterError> {
        self.primary
            .ship_bucket(bucket)
            .map_err(ClusterError::Storage)
    }

    /// After a committed rebalance: drops the moved bucket from the primary
    /// index, removes its keys from the primary-key index, and marks the
    /// bucket for lazy cleanup in every secondary index.
    ///
    /// Deferred stashes are reconciled first: a stash the moved bucket fully
    /// covers is simply dropped (all of its entries would be hidden by the
    /// lazy-cleanup mark anyway), while a stash that covers *more* than the
    /// moved bucket (the received bucket split locally and only one child
    /// moves away) is materialized now — its component lands in the tree
    /// before the mark, so the mark's per-component filter hides exactly the
    /// moved child's entries and keeps the sibling's, just as an eager
    /// install would have. Only the covering stash is materialized;
    /// unrelated deferred buckets keep waiting for their first query.
    ///
    /// Returns the number of records whose deferred entries had to be
    /// materialized here, so callers can charge the rebuild they triggered.
    pub fn cleanup_moved_bucket(&mut self, bucket: BucketId) -> Result<u64, ClusterError> {
        let covered: Vec<BucketId> = self
            .deferred_installed
            .keys()
            .filter(|b| bucket.covers(b))
            .copied()
            .collect();
        for b in covered {
            self.deferred_installed.remove(&b);
        }
        let covering: Vec<BucketId> = self
            .deferred_installed
            .keys()
            .filter(|b| b.covers(&bucket))
            .copied()
            .collect();
        let stashes: Vec<Vec<Component>> = covering
            .iter()
            .filter_map(|b| self.deferred_installed.remove(b))
            .collect();
        let warmed = self.materialize_deferred(stashes);
        self.primary
            .drop_bucket(bucket)
            .map_err(ClusterError::Storage)?;
        self.primary_key_index.mark_bucket_invalid(bucket);
        for s in self.secondaries.iter_mut() {
            s.mark_bucket_moved(bucket);
        }
        Ok(warmed)
    }

    // ---------------------------------------------- rebalance destination side

    /// Creates the pending bucket that will receive moved records.
    pub fn create_pending_bucket(&mut self, bucket: BucketId) -> Result<(), ClusterError> {
        self.primary
            .create_pending_bucket(bucket)
            .map_err(ClusterError::Storage)
    }

    /// Creates the pending bucket unless it already exists (the replication
    /// path may have re-created it after a destination crash, or a recovery
    /// retry may re-ship into it).
    pub fn ensure_pending_bucket(&mut self, bucket: BucketId) -> Result<(), ClusterError> {
        if self.primary.has_pending_bucket(&bucket) {
            return Ok(());
        }
        self.create_pending_bucket(bucket)
    }

    /// Bulk-loads scanned records into the pending bucket and rebuilds the
    /// corresponding secondary-index entries into the pending component lists.
    pub fn load_pending(
        &mut self,
        bucket: BucketId,
        entries: Vec<Entry>,
    ) -> Result<(), ClusterError> {
        // Rebuild secondary entries on the fly from the record payloads.
        let mut rebuilt: Vec<Vec<SecondaryEntry>> = self.defs.iter().map(|_| Vec::new()).collect();
        for e in &entries {
            if let Some(v) = e.op.value() {
                collect_secondary_entries(&self.defs, &e.key, v, &mut rebuilt);
            }
        }
        for (idx, rebuilt) in self.secondaries.iter_mut().zip(rebuilt) {
            if !rebuilt.is_empty() {
                idx.load_into_pending(rebuilt);
            }
        }
        // Primary-key index entries for the received records are loaded too.
        for e in &entries {
            if !e.op.is_delete() {
                // pk-index entries for received records stay invisible until
                // commit in a full system; the simulation adds them at install
                // time instead, so nothing to do here.
            }
        }
        self.primary
            .load_into_pending(bucket, entries)
            .map_err(ClusterError::Storage)
    }

    /// Installs components shipped whole from a source partition into the
    /// pending bucket; the primary data — sorted runs and Bloom filters
    /// included — arrives ready to serve. Secondary-index entries never
    /// travel with a bucket; how they are derived depends on `rebuild`:
    ///
    /// * [`SecondaryRebuild::Eager`] runs a lazy reconciling merge over the
    ///   shipped components and bulk-loads the extracted entries into the
    ///   pending secondary lists right here, on the commit path.
    /// * [`SecondaryRebuild::Deferred`] (the default) only stashes `Arc`
    ///   clones of the shipped handles: the bucket is recorded as
    ///   [`SecondaryState::Deferred`] and the extraction runs on the first
    ///   `index_scan` touching the dataset (or `warm_indexes`).
    ///
    /// Returns the number of records covered (identical under both modes),
    /// for cost accounting and the ship log. Producing that count is one
    /// merge pass over the shipped components and stays on the install path
    /// even under `Deferred` — it is metadata the ship log and wave report
    /// need either way; what the deferral removes is the per-record
    /// extractor work and index loading (and, in the cost model, the
    /// `index_rebuild` CPU charge).
    pub fn install_shipped_components(
        &mut self,
        bucket: BucketId,
        comps: Vec<Component>,
        rebuild: SecondaryRebuild,
    ) -> Result<u64, ClusterError> {
        let mut live_records = 0u64;
        let eager = rebuild == SecondaryRebuild::Eager || self.defs.is_empty();
        let mut rebuilt: Vec<Vec<SecondaryEntry>> = self.defs.iter().map(|_| Vec::new()).collect();
        {
            let sources: Vec<RefSource<'_>> = comps
                .iter()
                .map(|c| Box::new(c.iter().map(|e| (&e.key, &e.op))) as RefSource<'_>)
                .collect();
            for e in LazyMergeIter::new(sources, false) {
                live_records += 1;
                if eager {
                    if let Some(v) = e.op.value() {
                        collect_secondary_entries(&self.defs, &e.key, v, &mut rebuilt);
                    }
                }
            }
        }
        if eager {
            for (idx, rebuilt) in self.secondaries.iter_mut().zip(rebuilt) {
                if !rebuilt.is_empty() {
                    idx.load_into_pending(rebuilt);
                }
            }
        } else {
            // Cheap Arc clones: the stash pins the shipped base data so the
            // deferred extraction reads exactly what an eager install would
            // have read, whatever merges run on the primary in between.
            self.deferred_pending.insert(bucket, comps.clone());
        }
        self.primary
            .install_shipped(bucket, comps)
            .map_err(ClusterError::Storage)?;
        Ok(live_records)
    }

    /// Whether a received bucket's secondary entries are materialized.
    pub fn secondary_state(&self, bucket: &BucketId) -> SecondaryState {
        if self.deferred_pending.contains_key(bucket)
            || self.deferred_installed.contains_key(bucket)
        {
            SecondaryState::Deferred
        } else {
            SecondaryState::Ready
        }
    }

    /// True if any committed bucket still awaits its deferred secondary
    /// rebuild.
    pub fn has_deferred_secondary(&self) -> bool {
        !self.deferred_installed.is_empty()
    }

    /// Materializes the secondary entries of every committed
    /// [`SecondaryState::Deferred`] bucket: the stashed shipped components
    /// are merge-iterated once and the extracted entries land as the oldest
    /// data of each visible secondary index, so replicated writes installed
    /// at commit time keep superseding them. Returns the number of records
    /// processed (0 when nothing was deferred), which callers charge as the
    /// off-commit-path rebuild cost.
    pub fn warm_secondary_indexes(&mut self) -> u64 {
        if self.deferred_installed.is_empty() {
            return 0;
        }
        let stashes: Vec<Vec<Component>> = std::mem::take(&mut self.deferred_installed)
            .into_values()
            .collect();
        self.materialize_deferred(stashes)
    }

    /// Merge-iterates the given stashes once and loads the extracted entries
    /// as the oldest data of every visible secondary index. Returns the
    /// number of records processed.
    fn materialize_deferred(&mut self, stashes: Vec<Vec<Component>>) -> u64 {
        if stashes.is_empty() {
            return 0;
        }
        let mut records = 0u64;
        let mut rebuilt: Vec<Vec<SecondaryEntry>> = self.defs.iter().map(|_| Vec::new()).collect();
        for comps in &stashes {
            let sources: Vec<RefSource<'_>> = comps
                .iter()
                .map(|c| Box::new(c.iter().map(|e| (&e.key, &e.op))) as RefSource<'_>)
                .collect();
            for e in LazyMergeIter::new(sources, false) {
                records += 1;
                if let Some(v) = e.op.value() {
                    collect_secondary_entries(&self.defs, &e.key, v, &mut rebuilt);
                }
            }
        }
        for (idx, rebuilt) in self.secondaries.iter_mut().zip(rebuilt) {
            idx.load_deferred_base(rebuilt);
        }
        records
    }

    /// Applies a replicated concurrent delete to the pending bucket: the
    /// primary tombstone, plus — when the source supplied the old payload —
    /// deletes of the secondary entries in the pending lists, so an
    /// installed bucket serves no phantom index hits either.
    pub fn apply_replicated_delete(
        &mut self,
        bucket: BucketId,
        key: Key,
        old_value: Option<&Value>,
    ) -> Result<(), ClusterError> {
        if let Some(old) = old_value {
            for (def, idx) in self.defs.iter().zip(self.secondaries.iter_mut()) {
                if let Some(secondary) = (def.extractor)(old) {
                    idx.apply_replicated(secondary, key.clone(), true);
                }
            }
        }
        self.primary
            .apply_replicated(bucket, Entry::delete(key))
            .map_err(ClusterError::Storage)
    }

    /// Applies a replicated concurrent write to the pending bucket (and the
    /// pending secondary lists).
    pub fn apply_replicated(&mut self, bucket: BucketId, entry: Entry) -> Result<(), ClusterError> {
        for (def, idx) in self.defs.iter().zip(self.secondaries.iter_mut()) {
            if let Some(v) = entry.op.value() {
                if let Some(secondary) = (def.extractor)(v) {
                    idx.apply_replicated(secondary, entry.key.clone(), false);
                }
            }
        }
        self.primary
            .apply_replicated(bucket, entry)
            .map_err(ClusterError::Storage)
    }

    /// Flushes pending memory components (prepare phase).
    pub fn flush_pending(&mut self) {
        self.primary.flush_pending();
        for s in self.secondaries.iter_mut() {
            s.flush_pending();
        }
    }

    /// Installs a received bucket (commit phase), making it visible, and adds
    /// its keys to the primary-key index. A deferred secondary stash travels
    /// with the bucket: it is promoted from pending to installed state and
    /// the rebuild keeps waiting for the first index query.
    pub fn install_pending(&mut self, bucket: BucketId) -> Result<(), ClusterError> {
        self.primary
            .install_pending(bucket)
            .map_err(ClusterError::Storage)?;
        if let Some(comps) = self.deferred_pending.remove(&bucket) {
            self.deferred_installed.insert(bucket, comps);
        }
        for s in self.secondaries.iter_mut() {
            s.install_pending();
        }
        // Register the received keys in the primary-key index.
        if let Ok(entries) = self.primary.bucket_entries(&bucket) {
            for e in entries {
                self.primary_key_index
                    .put(e.key, dynahash_lsm::Bytes::new());
            }
        }
        Ok(())
    }

    /// Discards all pending state for this dataset (abort path). Idempotent.
    pub fn drop_pending(&mut self, bucket: BucketId) {
        self.primary.drop_pending(bucket);
        self.deferred_pending.remove(&bucket);
        for s in self.secondaries.iter_mut() {
            s.drop_pending();
        }
    }

    /// Discards every pending bucket and pending secondary list (crash
    /// recovery: the metadata registering an uncommitted transfer was never
    /// forced, so orphan received components — deferred stashes included —
    /// are dropped on restart and the rebalance recovery path re-ships them).
    pub fn drop_all_pending(&mut self) {
        self.primary.drop_all_pending();
        self.deferred_pending.clear();
        for s in self.secondaries.iter_mut() {
            s.drop_pending();
        }
    }
}

/// A storage partition: per-dataset storage plus shared metrics.
pub struct Partition {
    /// The partition id.
    pub id: PartitionId,
    datasets: BTreeMap<DatasetId, PartitionDataset>,
    metrics: Arc<StorageMetrics>,
}

impl std::fmt::Debug for Partition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Partition")
            .field("id", &self.id)
            .field("datasets", &self.datasets.len())
            .finish()
    }
}

impl Partition {
    /// Creates an empty partition.
    pub fn new(id: PartitionId) -> Self {
        Partition {
            id,
            datasets: BTreeMap::new(),
            metrics: StorageMetrics::new_shared(),
        }
    }

    /// The partition's storage metrics.
    pub fn metrics(&self) -> &Arc<StorageMetrics> {
        &self.metrics
    }

    /// Creates the local storage for a dataset with the given initial buckets.
    pub fn create_dataset(
        &mut self,
        id: DatasetId,
        spec: &DatasetSpec,
        initial_buckets: Vec<BucketId>,
    ) {
        self.datasets.insert(
            id,
            PartitionDataset::new(spec, initial_buckets, Arc::clone(&self.metrics)),
        );
    }

    /// Drops a dataset's local storage.
    pub fn drop_dataset(&mut self, id: DatasetId) {
        self.datasets.remove(&id);
    }

    /// Access a dataset's local storage.
    pub fn dataset(&self, id: DatasetId) -> Result<&PartitionDataset, ClusterError> {
        self.datasets
            .get(&id)
            .ok_or(ClusterError::UnknownDataset(id))
    }

    /// Mutable access to a dataset's local storage.
    pub fn dataset_mut(&mut self, id: DatasetId) -> Result<&mut PartitionDataset, ClusterError> {
        self.datasets
            .get_mut(&id)
            .ok_or(ClusterError::UnknownDataset(id))
    }

    /// The datasets stored on this partition.
    pub fn dataset_ids(&self) -> Vec<DatasetId> {
        self.datasets.keys().copied().collect()
    }

    /// Total storage bytes across datasets.
    pub fn total_storage_bytes(&self) -> usize {
        self.datasets
            .values()
            .map(|d| d.total_storage_bytes())
            .sum()
    }

    /// Discards the pending rebalance state of every dataset (crash path).
    pub fn drop_all_pending(&mut self) {
        for ds in self.datasets.values_mut() {
            ds.drop_all_pending();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SecondaryIndexDef;
    use dynahash_core::Scheme;

    fn spec_with_index() -> DatasetSpec {
        DatasetSpec::new("orders", Scheme::static_hash_256())
            .with_secondary_index(SecondaryIndexDef::new("idx_first8", |payload| {
                if payload.len() >= 8 {
                    let mut b = [0u8; 8];
                    b.copy_from_slice(&payload[..8]);
                    Some(Key::from_u64(u64::from_be_bytes(b)))
                } else {
                    None
                }
            }))
            .with_memtable_budget(8 * 1024)
    }

    fn all_buckets(depth: u8) -> Vec<BucketId> {
        (0..(1u32 << depth))
            .map(|b| BucketId::new(b, depth))
            .collect()
    }

    fn payload(secondary: u64) -> dynahash_lsm::Bytes {
        let mut v = secondary.to_be_bytes().to_vec();
        v.extend_from_slice(&[0u8; 56]);
        dynahash_lsm::Bytes::from(v)
    }

    #[test]
    fn ingest_updates_all_indexes() {
        let mut p = Partition::new(PartitionId(0));
        p.create_dataset(1, &spec_with_index(), all_buckets(2));
        let ds = p.dataset_mut(1).unwrap();
        for i in 0..300u64 {
            ds.ingest(Key::from_u64(i), payload(i % 10)).unwrap();
        }
        assert_eq!(ds.live_len(), 300);
        assert!(ds.get(&Key::from_u64(5)).is_some());
        // secondary search finds all records with secondary key 3
        let hits = ds
            .secondary_mut("idx_first8")
            .unwrap()
            .search_exact(&Key::from_u64(3));
        assert_eq!(hits.len(), 30);
        assert!(ds.total_storage_bytes() > 0);
        assert_eq!(p.dataset_ids(), vec![1]);
    }

    #[test]
    fn move_bucket_between_partitions_end_to_end() {
        let spec = spec_with_index();
        let mut src = Partition::new(PartitionId(0));
        let mut dst = Partition::new(PartitionId(1));
        src.create_dataset(1, &spec, all_buckets(1));
        dst.create_dataset(1, &spec, vec![]);

        let moved_bucket = BucketId::new(0, 1);
        {
            let ds = src.dataset_mut(1).unwrap();
            for i in 0..400u64 {
                ds.ingest(Key::from_u64(i), payload(i % 7)).unwrap();
            }
        }
        // source: snapshot + scan
        let entries = src
            .dataset_mut(1)
            .unwrap()
            .scan_bucket_for_move(moved_bucket)
            .unwrap();
        let moved_count = entries.len();
        assert!(moved_count > 0);

        // destination: pending load + a replicated concurrent write
        let dst_ds = dst.dataset_mut(1).unwrap();
        dst_ds.create_pending_bucket(moved_bucket).unwrap();
        dst_ds.load_pending(moved_bucket, entries.clone()).unwrap();
        let concurrent_key = entries[0].key.clone();
        dst_ds
            .apply_replicated(
                moved_bucket,
                Entry::put(concurrent_key.clone(), payload(99)),
            )
            .unwrap();
        assert_eq!(dst_ds.live_len(), 0, "pending data must stay invisible");

        // finalize: install at destination, cleanup at source
        dst_ds.flush_pending();
        dst_ds.install_pending(moved_bucket).unwrap();
        assert_eq!(dst_ds.live_len(), moved_count);
        assert_eq!(dst_ds.get(&concurrent_key).unwrap(), payload(99));
        // rebuilt secondary index answers queries at the destination
        let sec_hits = dst_ds
            .secondary_mut("idx_first8")
            .unwrap()
            .search_exact(&Key::from_u64(99));
        assert_eq!(sec_hits.len(), 1);

        let src_ds = src.dataset_mut(1).unwrap();
        let before = src_ds.live_len();
        src_ds.cleanup_moved_bucket(moved_bucket).unwrap();
        assert_eq!(src_ds.live_len(), before - moved_count);
        // lazy cleanup: secondary queries no longer return moved records
        let stale = src_ds
            .secondary_mut("idx_first8")
            .unwrap()
            .all_valid_entries();
        assert!(stale
            .iter()
            .all(|se| !moved_bucket.contains_key(&se.primary)));
    }

    /// Ships bucket `moved` from `src` into `dst` under the given rebuild
    /// mode and returns the number of records installed.
    fn ship_into(
        src: &mut Partition,
        dst: &mut Partition,
        moved: BucketId,
        rebuild: SecondaryRebuild,
    ) -> u64 {
        let comps = src
            .dataset_mut(1)
            .unwrap()
            .ship_bucket_components(moved)
            .unwrap();
        let dst_ds = dst.dataset_mut(1).unwrap();
        dst_ds.ensure_pending_bucket(moved).unwrap();
        dst_ds
            .install_shipped_components(moved, comps, rebuild)
            .unwrap()
    }

    #[test]
    fn deferred_install_answers_index_scans_like_eager() {
        let spec = spec_with_index();
        let moved = BucketId::new(0, 1);
        let mut results = Vec::new();
        for rebuild in [SecondaryRebuild::Eager, SecondaryRebuild::Deferred] {
            let mut src = Partition::new(PartitionId(0));
            let mut dst = Partition::new(PartitionId(1));
            src.create_dataset(1, &spec, all_buckets(1));
            dst.create_dataset(1, &spec, vec![]);
            for i in 0..400u64 {
                src.dataset_mut(1)
                    .unwrap()
                    .ingest(Key::from_u64(i), payload(i % 7))
                    .unwrap();
            }
            let records = ship_into(&mut src, &mut dst, moved, rebuild);
            assert!(records > 0);
            let dst_ds = dst.dataset_mut(1).unwrap();
            // a replicated concurrent delete must supersede the deferred base
            let victim = src
                .dataset(1)
                .unwrap()
                .primary
                .bucket_entries(&moved)
                .unwrap()[0]
                .key
                .clone();
            let old = src.dataset(1).unwrap().get(&victim);
            dst_ds
                .apply_replicated_delete(moved, victim.clone(), old.as_ref())
                .unwrap();
            dst_ds.flush_pending();
            dst_ds.install_pending(moved).unwrap();
            if rebuild == SecondaryRebuild::Deferred {
                assert_eq!(dst_ds.secondary_state(&moved), SecondaryState::Deferred);
                assert!(dst_ds.has_deferred_secondary());
            } else {
                assert_eq!(dst_ds.secondary_state(&moved), SecondaryState::Ready);
            }
            // warming is what an index scan does on first touch; afterwards
            // the bucket is Ready and a second warm is free
            let warmed = dst_ds.warm_secondary_indexes();
            if rebuild == SecondaryRebuild::Deferred {
                assert_eq!(warmed, records);
            } else {
                assert_eq!(warmed, 0);
            }
            assert_eq!(dst_ds.secondary_state(&moved), SecondaryState::Ready);
            assert_eq!(dst_ds.warm_secondary_indexes(), 0);
            let mut hits = dst_ds
                .secondary_mut("idx_first8")
                .unwrap()
                .all_valid_entries();
            hits.sort();
            assert!(
                hits.iter().all(|se| se.primary != victim),
                "replicated delete must hide the victim's index entry"
            );
            results.push(hits);
        }
        assert_eq!(
            results[0], results[1],
            "deferred rebuild must answer index scans exactly like eager"
        );
    }

    #[test]
    fn dropping_pending_discards_the_deferred_stash() {
        let spec = spec_with_index();
        let moved = BucketId::new(0, 1);
        let mut src = Partition::new(PartitionId(0));
        let mut dst = Partition::new(PartitionId(1));
        src.create_dataset(1, &spec, all_buckets(1));
        dst.create_dataset(1, &spec, vec![]);
        for i in 0..200u64 {
            src.dataset_mut(1)
                .unwrap()
                .ingest(Key::from_u64(i), payload(i % 5))
                .unwrap();
        }
        ship_into(&mut src, &mut dst, moved, SecondaryRebuild::Deferred);
        let dst_ds = dst.dataset_mut(1).unwrap();
        assert_eq!(dst_ds.secondary_state(&moved), SecondaryState::Deferred);
        // crash/abort wipes the pending bucket AND its stash: nothing to warm
        dst_ds.drop_all_pending();
        assert_eq!(dst_ds.secondary_state(&moved), SecondaryState::Ready);
        assert_eq!(dst_ds.warm_secondary_indexes(), 0);
        assert!(dst_ds
            .secondary_mut("idx_first8")
            .unwrap()
            .all_valid_entries()
            .is_empty());
    }

    #[test]
    fn cleanup_of_a_split_child_materializes_the_sibling_entries() {
        // A bucket installed with a deferred stash splits locally; one child
        // then moves away. The cleanup must materialize the stash before the
        // lazy-cleanup mark so the remaining sibling's entries survive.
        let spec = spec_with_index();
        let moved = BucketId::new(0, 1);
        let mut src = Partition::new(PartitionId(0));
        let mut dst = Partition::new(PartitionId(1));
        src.create_dataset(1, &spec, all_buckets(1));
        dst.create_dataset(1, &spec, vec![]);
        for i in 0..300u64 {
            src.dataset_mut(1)
                .unwrap()
                .ingest(Key::from_u64(i), payload(i))
                .unwrap();
        }
        ship_into(&mut src, &mut dst, moved, SecondaryRebuild::Deferred);
        let dst_ds = dst.dataset_mut(1).unwrap();
        dst_ds.install_pending(moved).unwrap();
        let (lo, hi) = dst_ds.primary.split_bucket(moved).unwrap();
        let keep = dst_ds.primary.bucket_entries(&lo).unwrap().len();
        assert!(keep > 0);
        // `hi` moves away before any index scan warmed the stash
        dst_ds.cleanup_moved_bucket(hi).unwrap();
        assert!(!dst_ds.has_deferred_secondary());
        let hits = dst_ds
            .secondary_mut("idx_first8")
            .unwrap()
            .all_valid_entries();
        assert_eq!(hits.len(), keep, "sibling entries must survive");
        assert!(hits.iter().all(|se| lo.contains_key(&se.primary)));
        // ...and cleaning up a bucket that covers the whole stash drops it
        let mut dst2 = Partition::new(PartitionId(2));
        dst2.create_dataset(1, &spec, vec![]);
        ship_into(&mut src, &mut dst2, moved, SecondaryRebuild::Deferred);
        let ds2 = dst2.dataset_mut(1).unwrap();
        ds2.install_pending(moved).unwrap();
        ds2.cleanup_moved_bucket(moved).unwrap();
        assert!(!ds2.has_deferred_secondary());
        assert_eq!(ds2.warm_secondary_indexes(), 0);
    }

    #[test]
    fn abort_discards_pending_data() {
        let spec = spec_with_index();
        let mut dst = Partition::new(PartitionId(1));
        dst.create_dataset(1, &spec, all_buckets(1));
        let b = BucketId::new(0, 2); // not owned: pending only
        let ds = dst.dataset_mut(1).unwrap();
        ds.create_pending_bucket(b).unwrap();
        ds.load_pending(b, vec![Entry::put(Key::from_u64(1), payload(1))])
            .unwrap();
        ds.drop_pending(b);
        // installing after a drop fails gracefully, data stays invisible
        assert!(ds.install_pending(b).is_err());
        assert_eq!(ds.get(&Key::from_u64(1)), None);
    }

    #[test]
    fn unknown_dataset_errors() {
        let mut p = Partition::new(PartitionId(3));
        assert!(p.dataset(9).is_err());
        assert!(p.dataset_mut(9).is_err());
        p.create_dataset(
            9,
            &DatasetSpec::new("x", Scheme::Hashing),
            vec![BucketId::root()],
        );
        assert!(p.dataset(9).is_ok());
        p.drop_dataset(9);
        assert!(p.dataset(9).is_err());
    }
}
