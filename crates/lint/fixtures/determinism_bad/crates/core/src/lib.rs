use std::time::Instant;

pub fn f() -> Instant {
    Instant::now()
}
