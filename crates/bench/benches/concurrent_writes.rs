//! Figure 7c: DynaHash rebalance time under concurrent ingestion.

use dynahash_bench::timing::{bench_case, bench_group, DEFAULT_ITERS};
use dynahash_bench::{fig7c_concurrent_writes, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::quick();
    bench_group("fig7c_concurrent_writes");
    for rate in [0.0f64, 5.0] {
        bench_case(
            &format!("krecords_per_sec/{}", rate as u64),
            DEFAULT_ITERS,
            || fig7c_concurrent_writes(&cfg, &[rate]),
        );
    }
}
