//! Scenarios for the step-driven rebalance executor.
//!
//! These tests drive [`RebalanceJob`] step-by-step — the cluster is fully
//! usable between any two steps — and check the paper's online guarantees:
//! scans between waves see exactly the committed record set, feed batches
//! ingested mid-flight survive the bucket moves, nodes can crash and recover
//! between waves, and a controller restart mid-job aborts cleanly. A seeded
//! property test (same harness style as `rebalance_invariants.rs`: the
//! failing seed and step trace are printed on panic) interleaves random
//! grow/shrink jobs with feed ingestion and asserts the directory and
//! record-set invariants after every single job step.

mod common;

use std::collections::BTreeSet;

use common::{
    assert_committed_set, check_seeded_cases, cluster_with_dataset, record, test_cluster, CASES,
};
use dynahash::cluster::{Cluster, DatasetSpec, RebalanceJob, RebalanceOptions};
use dynahash::core::{NodeId, RebalanceOutcome, Scheme};
use dynahash::lsm::entry::Key;
use dynahash::lsm::rng::SplitMix64;

/// The acceptance scenario: a rebalance driven step-by-step with a scan
/// query and a feed batch applied between every pair of waves and a node
/// crash/recovery mid-movement — and the job still commits with every
/// integrity invariant intact.
#[test]
fn step_driven_job_survives_queries_feeds_and_crashes_between_waves() {
    let (mut cluster, ds) = cluster_with_dataset(3, Scheme::StaticHash { num_buckets: 32 }, 3000);
    let mut expected: BTreeSet<u64> = (0..3000).collect();
    cluster.add_node().unwrap();
    let target = cluster.topology().clone();

    let mut job = RebalanceJob::plan(&mut cluster, ds, &target, 2).unwrap();
    assert!(job.num_waves() >= 2, "scenario needs multiple waves");
    job.init(&mut cluster).unwrap();

    let mut next_feed_key = 100_000u64;
    let mut crashed_once = false;
    while job.has_remaining_waves() {
        let wave = job.run_wave(&mut cluster).unwrap();

        // 1. a scan between waves sees exactly the committed records
        assert_committed_set(
            &mut cluster,
            ds,
            &expected,
            &format!("after wave {}", wave.wave),
        );

        // 2. a feed batch lands mid-flight (replicated where needed)
        let batch: Vec<_> = (next_feed_key..next_feed_key + 40).map(record).collect();
        job.apply_feed_batch(&mut cluster, batch).unwrap();
        expected.extend(next_feed_key..next_feed_key + 40);
        next_feed_key += 40;
        assert_committed_set(
            &mut cluster,
            ds,
            &expected,
            &format!("after feed batch at wave {}", wave.wave),
        );

        // 3. crash a node between two waves, query the survivors' view,
        //    recover, and keep rebalancing
        if !crashed_once {
            crashed_once = true;
            cluster.crash_node(NodeId(0)).unwrap();
            assert!(!cluster.node_is_alive(NodeId(0)));
            cluster.recover_node(NodeId(0)).unwrap();
        }
    }

    job.prepare(&mut cluster).unwrap();
    assert_eq!(
        job.decide(&mut cluster).unwrap(),
        RebalanceOutcome::Committed
    );
    job.commit(&mut cluster).unwrap();
    let report = job.finalize(&mut cluster).unwrap();

    assert_eq!(report.outcome, RebalanceOutcome::Committed);
    assert_eq!(report.concurrent_writes_applied, job.writes_applied());
    assert_eq!(cluster.dataset_len(ds).unwrap(), expected.len());
    assert_committed_set(&mut cluster, ds, &expected, "after finalize");
    cluster
        .check_rebalance_integrity(ds, report.rebalance_id)
        .unwrap();
    // every feed record is readable through the *new* routing, via a fresh
    // session (which therefore never sees a redirect)
    let mut session = cluster.session(ds).unwrap();
    for k in (100_000..next_feed_key).step_by(7) {
        let key = Key::from_u64(k);
        assert!(
            session.get(&cluster, &key).unwrap().is_some(),
            "feed key {k} unreachable after the rebalance"
        );
    }
    assert_eq!(session.metrics().redirects, 0);
}

/// The online-query guarantee in isolation: with fully serial waves (the
/// most step boundaries possible), a scan between every pair of waves
/// returns exactly the committed record set.
#[test]
fn scan_between_every_pair_of_waves_sees_the_committed_set() {
    let (mut cluster, ds) = cluster_with_dataset(2, Scheme::StaticHash { num_buckets: 16 }, 2000);
    let expected: BTreeSet<u64> = (0..2000).collect();
    cluster.add_node().unwrap();
    let target = cluster.topology().clone();

    let mut job = RebalanceJob::plan(&mut cluster, ds, &target, 1).unwrap();
    job.init(&mut cluster).unwrap();
    assert_committed_set(&mut cluster, ds, &expected, "after init");
    while job.has_remaining_waves() {
        let wave = job.run_wave(&mut cluster).unwrap();
        assert_committed_set(
            &mut cluster,
            ds,
            &expected,
            &format!("between waves {} and {}", wave.wave, wave.wave + 1),
        );
    }
    job.prepare(&mut cluster).unwrap();
    job.decide(&mut cluster).unwrap();
    job.commit(&mut cluster).unwrap();
    let report = job.finalize(&mut cluster).unwrap();
    assert_committed_set(&mut cluster, ds, &expected, "after finalize");
    cluster
        .check_rebalance_integrity(ds, report.rebalance_id)
        .unwrap();
}

/// A controller restart between waves follows the paper's recovery rule —
/// BEGIN without COMMIT aborts — and the abort leaves the dataset exactly as
/// it was.
#[test]
fn controller_restart_between_waves_aborts_cleanly() {
    let (mut cluster, ds) = cluster_with_dataset(2, Scheme::StaticHash { num_buckets: 16 }, 1200);
    let expected: BTreeSet<u64> = (0..1200).collect();
    cluster.add_node().unwrap();
    let target = cluster.topology().clone();

    let mut job = RebalanceJob::plan(&mut cluster, ds, &target, 1).unwrap();
    job.init(&mut cluster).unwrap();
    job.run_wave(&mut cluster).unwrap();

    // the CC dies and comes back: the metadata log shows the operation
    // in-flight, so recovery aborts it
    let recovery = cluster.restart_controller();
    assert!(recovery.aborted_rebalances.contains(&job.rebalance_id()));
    job.abort(&mut cluster).unwrap();
    let report = job.finalize(&mut cluster).unwrap();

    assert_eq!(report.outcome, RebalanceOutcome::Aborted);
    assert_committed_set(&mut cluster, ds, &expected, "after aborted job");
    cluster
        .check_rebalance_integrity(ds, report.rebalance_id)
        .unwrap();
    // the dataset rebalances fine afterwards
    let report = cluster
        .rebalance(ds, &target, RebalanceOptions::none())
        .unwrap();
    assert_eq!(report.outcome, RebalanceOutcome::Committed);
    cluster
        .check_rebalance_integrity(ds, report.rebalance_id)
        .unwrap();
}

/// The *normal* public ingestion path stays online during data movement:
/// `Session::ingest` between waves replicates writes to already-shipped
/// buckets, so nothing is lost when the commit drops the source buckets.
/// Once the prepare phase flushes the pending components, writes are
/// briefly blocked (Section V-C) instead of being silently dropped.
#[test]
fn normal_ingest_between_waves_loses_nothing() {
    let (mut cluster, ds) = cluster_with_dataset(2, Scheme::StaticHash { num_buckets: 16 }, 1200);
    let mut expected: BTreeSet<u64> = (0..1200).collect();
    cluster.add_node().unwrap();
    let target = cluster.topology().clone();

    // the session predates the job: it stays usable across every step
    let mut session = cluster.session(ds).unwrap();
    let mut job = RebalanceJob::plan(&mut cluster, ds, &target, 1).unwrap();
    job.init(&mut cluster).unwrap();

    let mut next_key = 200_000u64;
    while job.has_remaining_waves() {
        job.run_wave(&mut cluster).unwrap();
        // plain Session::ingest — NOT job.apply_feed_batch
        session
            .ingest(&mut cluster, (next_key..next_key + 60).map(record))
            .unwrap();
        expected.extend(next_key..next_key + 60);
        next_key += 60;
        assert_committed_set(&mut cluster, ds, &expected, "after plain ingest");
    }
    assert_eq!(
        session.metrics().redirects,
        0,
        "sources serve their buckets until the commit: no redirects mid-flight"
    );

    job.prepare(&mut cluster).unwrap();
    // writes are briefly blocked between prepare and the decision
    let (k, v) = record(999_999);
    let blocked = session.put(&mut cluster, k, v);
    assert!(
        matches!(
            blocked,
            Err(dynahash::cluster::ClusterError::DatasetWriteBlocked(d)) if d == ds
        ),
        "writes must be blocked during the prepare window, got {blocked:?}"
    );

    job.decide(&mut cluster).unwrap();
    job.commit(&mut cluster).unwrap();
    let report = job.finalize(&mut cluster).unwrap();
    assert_eq!(report.outcome, RebalanceOutcome::Committed);
    assert_eq!(cluster.dataset_len(ds).unwrap(), expected.len());
    assert_committed_set(&mut cluster, ds, &expected, "after finalize");
    cluster
        .check_rebalance_integrity(ds, report.rebalance_id)
        .unwrap();
    // writes work again after the commit: the stale session redirects to
    // the new owner, refreshes, and retries transparently
    let (k, v) = record(999_999);
    session.put(&mut cluster, k, v).unwrap();
    assert_eq!(cluster.dataset_len(ds).unwrap(), expected.len() + 1);
    cluster.check_dataset_consistency(ds).unwrap();
}

// ---------------------------------------------------------------- property

#[derive(Debug, Clone)]
enum Step {
    Grow { max_moves: usize },
    Shrink { max_moves: usize },
    Feed(u16),
}

fn random_step(rng: &mut SplitMix64) -> Step {
    match rng.gen_range(0..4) {
        0 | 1 => Step::Feed(rng.gen_range(40..250) as u16),
        2 => Step::Grow {
            max_moves: rng.gen_range(1..5) as usize,
        },
        _ => Step::Shrink {
            max_moves: rng.gen_range(1..5) as usize,
        },
    }
}

fn check_stepped_rebalances_never_lose_records(scheme: Scheme, seed_base: u64) {
    check_seeded_cases(
        &format!("stepped-rebalance property for scheme {scheme:?}"),
        seed_base,
        CASES,
        |_seed, rng| {
            let n = rng.gen_range(2..6) as usize;
            (0..n).map(|_| random_step(rng)).collect::<Vec<Step>>()
        },
        |seed, steps| run_steps(scheme, seed, steps),
    );
}

/// Invariants that must hold after *every* job step: the CC's directory
/// covers the full hash space, every record routes to the partition storing
/// it, and a scan sees exactly the expected record set.
fn assert_step_invariants(cluster: &mut Cluster, ds: u32, expected: &BTreeSet<u64>, when: &str) {
    let meta = cluster.controller.dataset(ds).unwrap();
    let dir = meta
        .directory
        .as_ref()
        .expect("bucketed datasets keep a directory");
    assert!(
        dir.covers_full_space(),
        "{when}: directory leaves hash-space holes"
    );
    cluster
        .check_dataset_consistency(ds)
        .unwrap_or_else(|e| panic!("{when}: {e}"));
    assert_committed_set(cluster, ds, expected, when);
}

fn run_steps(scheme: Scheme, seed: u64, steps: &[Step]) {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x5eed_f00d);
    let mut cluster = test_cluster(2);
    let ds = cluster
        .create_dataset(DatasetSpec::new("events", scheme))
        .unwrap();
    let mut next_key = 0u64;
    let mut expected: BTreeSet<u64> = BTreeSet::new();
    let ingest =
        |cluster: &mut Cluster, expected: &mut BTreeSet<u64>, next_key: &mut u64, n: u64| {
            cluster
                .session(ds)
                .unwrap()
                .ingest(cluster, (*next_key..*next_key + n).map(record))
                .unwrap();
            expected.extend(*next_key..*next_key + n);
            *next_key += n;
        };
    ingest(&mut cluster, &mut expected, &mut next_key, 300);

    for (i, step) in steps.iter().enumerate() {
        match step {
            Step::Feed(n) => {
                ingest(&mut cluster, &mut expected, &mut next_key, *n as u64);
            }
            Step::Grow { max_moves } | Step::Shrink { max_moves } => {
                let grow = matches!(step, Step::Grow { .. });
                let (target, victim) = if grow {
                    if cluster.topology().num_nodes() >= 5 {
                        continue;
                    }
                    cluster.add_node().unwrap();
                    (cluster.topology().clone(), None)
                } else {
                    if cluster.topology().num_nodes() <= 1 {
                        continue;
                    }
                    let victim = *cluster.topology().nodes().last().unwrap();
                    (cluster.topology_without(victim), Some(victim))
                };

                let mut job = RebalanceJob::plan(&mut cluster, ds, &target, *max_moves).unwrap();
                assert_step_invariants(&mut cluster, ds, &expected, &format!("step {i}: planned"));
                job.init(&mut cluster).unwrap();
                assert_step_invariants(&mut cluster, ds, &expected, &format!("step {i}: init"));
                while job.has_remaining_waves() {
                    let wave = job.run_wave(&mut cluster).unwrap();
                    assert_step_invariants(
                        &mut cluster,
                        ds,
                        &expected,
                        &format!("step {i}: wave {}", wave.wave),
                    );
                    // interleave a feed batch through the job
                    let n = rng.gen_range(0..120);
                    if n > 0 {
                        let batch: Vec<_> = (next_key..next_key + n).map(record).collect();
                        job.apply_feed_batch(&mut cluster, batch).unwrap();
                        expected.extend(next_key..next_key + n);
                        next_key += n;
                        assert_step_invariants(
                            &mut cluster,
                            ds,
                            &expected,
                            &format!("step {i}: feed after wave {}", wave.wave),
                        );
                    }
                }
                job.prepare(&mut cluster).unwrap();
                assert_step_invariants(&mut cluster, ds, &expected, &format!("step {i}: prepared"));
                assert_eq!(
                    job.decide(&mut cluster).unwrap(),
                    RebalanceOutcome::Committed
                );
                job.commit(&mut cluster).unwrap();
                assert_step_invariants(&mut cluster, ds, &expected, &format!("step {i}: commit"));
                let report = job.finalize(&mut cluster).unwrap();
                cluster
                    .check_rebalance_integrity(ds, report.rebalance_id)
                    .unwrap_or_else(|e| panic!("step {i}: integrity after finalize: {e}"));
                assert_step_invariants(&mut cluster, ds, &expected, &format!("step {i}: final"));
                if let Some(victim) = victim {
                    cluster.decommission_node(victim).unwrap();
                }
            }
        }
        assert_eq!(
            cluster.dataset_len(ds).unwrap(),
            expected.len(),
            "step {i}: records lost or duplicated"
        );
    }
}

#[test]
fn prop_stepped_dynahash_jobs_never_lose_records() {
    check_stepped_rebalances_never_lose_records(Scheme::dynahash(16 * 1024, 4), 0x57e9_0000);
}

#[test]
fn prop_stepped_statichash_jobs_never_lose_records() {
    check_stepped_rebalances_never_lose_records(
        Scheme::StaticHash { num_buckets: 32 },
        0x57e9_1000,
    );
}
