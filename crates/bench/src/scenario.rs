//! Declarative scenario scripts and the seeded soak driver.
//!
//! A [`Scenario`] is a list of [`ScenarioOp`]s — Zipfian-skewed ingest
//! bursts, mixed point/range/index query batches, node churn (add/remove
//! under sustained session-driven feeds, with crash injection between
//! rebalance waves), churn storms, and index warming — executed against a
//! multi-dataset cluster by a deterministic, seeded runner. The runner keeps
//! a `BTreeMap` model of every dataset and checks invariants *continuously*
//! between ops:
//!
//! * the CC directory covers the hash space and agrees with itself
//!   ([`Admin::check_directory_invariants`], cheap enough for every step);
//! * sampled reads through long-lived, possibly-stale sessions match the
//!   model (the redirect protocol must converge them transparently);
//! * a fresh session never sees a redirect;
//!
//! and, at every churn boundary and at the end of the run, the heavyweight
//! passes: `check_rebalance_integrity` for every finished job,
//! `check_dataset_consistency`, exact live-record counts, bounded redirect
//! counts for the stale sessions, and a byte-for-byte scan-vs-model
//! comparison. Any violation stops the run; the [`SoakReport`] carries the
//! seed and the executed op trace so the exact failure is replayable —
//! `run_soak` with the same [`SoakConfig`] regenerates the same script and
//! the same interleaving.
//!
//! [`Admin::check_directory_invariants`]: dynahash_cluster::Admin::check_directory_invariants

use std::collections::BTreeMap;

use dynahash_cluster::{
    Cluster, ClusterConfig, ClusterError, ControlConfig, ControlDecision, ControlPlane, CostModel,
    DatasetSpec, FaultSchedule, RebalanceJob, SecondaryIndexDef, Session, WaveFault,
};
use dynahash_core::{NodeId, RebalanceOutcome, Scheme};
use dynahash_lsm::entry::{Key, StorageFootprint};
use dynahash_lsm::rng::{scramble, SplitMix64, Zipfian};
use dynahash_lsm::Bytes;

// ------------------------------------------------------------ key shaping

/// Distribution of key *ranks* over the key universe.
#[derive(Debug, Clone, Copy)]
pub enum KeyDist {
    /// Every key equally likely.
    Uniform,
    /// Zipfian with exponent `s` (rank 1 is the hottest key).
    Zipfian {
        /// Skew exponent; the paper-style skewed workloads use ≈ 1.1.
        s: f64,
    },
}

/// Draws keys from a bounded universe under a configurable rank
/// distribution, optionally scrambling ranks through the SplitMix64
/// finalizer so hot keys spread over the whole hash space instead of
/// clustering in low buckets.
#[derive(Debug)]
pub struct KeyGen {
    universe: u64,
    zipf: Option<Zipfian>,
    scrambled: bool,
}

impl KeyGen {
    /// A generator over `universe` distinct keys.
    pub fn new(universe: u64, dist: KeyDist, scrambled: bool) -> Self {
        let zipf = match dist {
            KeyDist::Uniform => None,
            KeyDist::Zipfian { s } => Some(Zipfian::new(universe, s)),
        };
        KeyGen {
            universe,
            zipf,
            scrambled,
        }
    }

    /// Draws one key. The mapping from rank to key is fixed, so the hot set
    /// is stable across the whole run.
    pub fn draw(&self, rng: &mut SplitMix64) -> u64 {
        let rank = match &self.zipf {
            Some(z) => z.sample(rng) - 1,
            None => rng.gen_range(0..self.universe),
        };
        if self.scrambled {
            scramble(rank)
        } else {
            rank
        }
    }
}

// -------------------------------------------------------------- scenarios

/// One declarative step of a scenario script.
#[derive(Debug, Clone)]
pub enum ScenarioOp {
    /// Ingest `records` freshly drawn keys into dataset `dataset` through
    /// its long-lived session (overwrites bump the record version).
    Ingest {
        /// Index into the runner's dataset list.
        dataset: usize,
        /// Records to ingest.
        records: u64,
    },
    /// A batch of mixed operations against dataset `dataset`: point reads
    /// checked against the model, single puts with read-your-writes,
    /// deletes, and bounded secondary-index range scans.
    Queries {
        /// Index into the runner's dataset list.
        dataset: usize,
        /// Operations in the batch.
        ops: u64,
    },
    /// One churn event: grow when at/below the configured base size, shrink
    /// otherwise. Every dataset is rebalanced by its own concurrent
    /// [`RebalanceJob`], waves interleaved round-robin, with session-driven
    /// feeds of `feed` records per dataset between waves and a seeded
    /// [`FaultSchedule`] injected mid-movement (a crash + recovery, or — in
    /// chaos mode on grow events — the permanent loss of the node just
    /// added, re-planned onto the survivors).
    Churn {
        /// Max concurrent bucket moves per rebalance wave.
        max_moves: usize,
        /// Records fed per dataset between waves (plain `Session::ingest`).
        feed: u64,
    },
    /// `rounds` back-to-back [`ScenarioOp::Churn`] events.
    ChurnStorm {
        /// Consecutive churn events.
        rounds: usize,
        /// Max concurrent bucket moves per rebalance wave.
        max_moves: usize,
        /// Records fed per dataset between waves of each event.
        feed: u64,
    },
    /// Explicit grow step for hand-written scripts; skipped (and traced as
    /// skipped) when the cluster is already at the configured ceiling.
    AddNode {
        /// Max concurrent bucket moves per rebalance wave.
        max_moves: usize,
    },
    /// Explicit shrink step; skipped at the two-node floor.
    RemoveNode {
        /// Max concurrent bucket moves per rebalance wave.
        max_moves: usize,
    },
    /// Materialize every deferred secondary rebuild of the indexed dataset
    /// ([`Admin::warm_indexes`](dynahash_cluster::Admin::warm_indexes)).
    WarmIndexes,
    /// Crash a seeded-random node, verify it is down, then
    /// `recover_all_nodes` and check reads still match the model.
    CrashRecover,
    /// A sustained hotspot: `rounds` rounds of `ops` Zipfian-hot point
    /// queries against a tiny fixed key set (so the heat lands on a few
    /// buckets), each round followed by one armed-[`ControlPlane`] tick.
    /// The plane is then ticked until it goes idle, so every auto-triggered
    /// split and migration finishes — and is integrity-checked — before the
    /// script moves on. A no-op when [`SoakConfig::control`] is off.
    Hotspot {
        /// Index into the runner's dataset list.
        dataset: usize,
        /// Hot queries per round.
        ops: u64,
        /// Query rounds (each followed by a control tick).
        rounds: u64,
    },
}

/// A named, declarative scenario script.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Name used in traces and reports.
    pub name: String,
    /// The ops, executed in order with continuous invariant checks between
    /// them.
    pub ops: Vec<ScenarioOp>,
}

impl Scenario {
    /// Creates a named script.
    pub fn new(name: impl Into<String>, ops: Vec<ScenarioOp>) -> Self {
        Scenario {
            name: name.into(),
            ops,
        }
    }
}

// ------------------------------------------------------------------ config

/// Knobs of a soak run. Everything — script generation and execution — is a
/// pure function of this struct, so a failing run is replayed by rerunning
/// with the same config.
#[derive(Debug, Clone, Copy)]
pub struct SoakConfig {
    /// Master seed; drives script generation and every random choice of the
    /// runner.
    pub seed: u64,
    /// Starting (and churn-equilibrium) node count.
    pub nodes: u32,
    /// Hard ceiling on nodes during churn storms.
    pub max_nodes: u32,
    /// Storage partitions per node.
    pub partitions_per_node: u32,
    /// Number of datasets (dataset 0 carries a secondary index).
    pub datasets: usize,
    /// Distinct keys in the generator's universe.
    pub key_universe: u64,
    /// Total records ingested across the run (spread over the ingest ops).
    pub target_ingest: u64,
    /// Zipfian exponent of the ingest workload.
    pub zipf_s: f64,
    /// Script length in ops.
    pub steps: usize,
    /// Churn events placed (evenly spaced) in the script. Churn never
    /// skips, so this is also a lower bound on events executed.
    pub churn_events: usize,
    /// Value payload size in bytes (min 16: key + version header).
    pub value_bytes: usize,
    /// Operations per [`ScenarioOp::Queries`] batch.
    pub queries_per_step: u64,
    /// Sampled model reads in each continuous check.
    pub sample_reads: usize,
    /// Max concurrent bucket moves per rebalance wave.
    pub max_moves: usize,
    /// DynaHash max bucket size in bytes.
    pub max_bucket_bytes: u64,
    /// Chaos mode: every churn event additionally injects seeded transient
    /// ship failures (absorbed by retry) and a seeded slow node (absorbed by
    /// straggler speculation), and grow events permanently lose a node
    /// mid-movement — alternating between the node just added (a pure
    /// destination, re-planned with zero data loss) and an **established**
    /// data-holding node, whose sole bucket copies die with it: the dataset
    /// serves degraded (typed errors, never silent emptiness) until the
    /// runner repairs it from its model snapshot — through the armed
    /// [`ControlPlane`]'s registered repair feed when [`SoakConfig::control`]
    /// is on, directly otherwise. Fault decisions come from the scenario
    /// rng, so `seed` replays them exactly.
    pub chaos: bool,
    /// Arms heat tracking and a [`ControlPlane`], and places
    /// [`ScenarioOp::Hotspot`] events in the script: Zipfian query heat on
    /// a few buckets must auto-trigger splits and migrations that converge
    /// before the script moves on.
    pub control: bool,
}

impl SoakConfig {
    /// The CI quick profile: ≥ 1M records over a million-key universe on 12
    /// nodes, Zipfian s = 1.1, 4 churn events. Runs in seconds in release.
    pub fn quick(seed: u64) -> Self {
        SoakConfig {
            seed,
            nodes: 12,
            max_nodes: 15,
            partitions_per_node: 2,
            datasets: 2,
            key_universe: 1 << 20,
            target_ingest: 1_050_000,
            zipf_s: 1.1,
            steps: 36,
            churn_events: 4,
            value_bytes: 16,
            queries_per_step: 300,
            sample_reads: 16,
            max_moves: 8,
            max_bucket_bytes: 64 * 1024,
            chaos: false,
            control: true,
        }
    }

    /// A bounded profile for integration tests (debug builds).
    pub fn smoke(seed: u64) -> Self {
        SoakConfig {
            seed,
            nodes: 4,
            max_nodes: 6,
            partitions_per_node: 2,
            datasets: 2,
            key_universe: 1 << 14,
            target_ingest: 24_000,
            zipf_s: 1.1,
            steps: 10,
            churn_events: 2,
            value_bytes: 16,
            queries_per_step: 120,
            sample_reads: 8,
            max_moves: 4,
            max_bucket_bytes: 32 * 1024,
            chaos: false,
            control: false,
        }
    }

    /// The full nightly profile: a larger fleet and several million
    /// records. Not wired into CI's required path — run manually via
    /// `cargo run --release --bin soak -- --full`.
    pub fn full(seed: u64) -> Self {
        SoakConfig {
            seed,
            nodes: 16,
            max_nodes: 20,
            partitions_per_node: 4,
            datasets: 3,
            key_universe: 1 << 22,
            target_ingest: 4_000_000,
            zipf_s: 1.1,
            steps: 80,
            churn_events: 10,
            value_bytes: 32,
            queries_per_step: 1_000,
            sample_reads: 32,
            max_moves: 12,
            max_bucket_bytes: 256 * 1024,
            chaos: false,
            control: true,
        }
    }

    fn value_len(&self) -> usize {
        self.value_bytes.max(16)
    }
}

// ------------------------------------------------------------------ report

/// Outcome of a soak run.
#[derive(Debug)]
pub struct SoakReport {
    /// The seed the run (and its generated script) derives from.
    pub seed: u64,
    /// Ops executed before the run ended (== script length on success).
    pub steps_run: usize,
    /// Records ingested across all datasets (ingest ops + churn feeds).
    pub records_ingested: u64,
    /// Live records at the end of the run, summed over datasets.
    pub live_records: u64,
    /// Point/put/delete/index operations executed by query batches.
    pub queries_run: u64,
    /// Deletes applied (subset of `queries_run`).
    pub deletes: u64,
    /// Churn events executed (each rebalances every dataset concurrently).
    pub churn_events: usize,
    /// Rebalance jobs committed (churn events × datasets).
    pub rebalances: usize,
    /// Node crashes injected (all recovered).
    pub crashes: usize,
    /// Transient ship failures injected by the fault plane (chaos mode).
    pub transient_faults: u64,
    /// Transfer attempts retried after a transient failure (every injected
    /// transient must be absorbed by a retry, never an abort).
    pub fault_retries: u64,
    /// Bucket moves rerouted or canceled by `replan_wave` after a loss.
    pub reroutes: u64,
    /// Buckets re-shipped from live sources after losing their first
    /// destination.
    pub reshipped: u64,
    /// Nodes permanently lost (and re-planned around) during the run.
    pub lost_nodes: usize,
    /// Established (data-holding) nodes among the losses: each one degraded
    /// a dataset until its repair.
    pub established_losses: usize,
    /// Transfers speculatively re-executed as stragglers under a slow-node
    /// fault.
    pub speculated: u64,
    /// Speculative backups that beat their original attempt.
    pub speculation_wins: u64,
    /// Repair jobs committed (one per dataset degraded by an established
    /// loss).
    pub repairs: u64,
    /// Lost buckets restored from model-snapshot repair feeds.
    pub repaired_buckets: u64,
    /// Reads that hit a lost bucket during a degraded window and got the
    /// typed error (never silently-empty data).
    pub degraded_reads: u64,
    /// Writes refused because they routed to a lost bucket (kept out of the
    /// model, so the repair feed stays byte-exact).
    pub degraded_writes: u64,
    /// Buckets still degraded at the end of the run, one line per dataset
    /// (`dataset N: [ids]`). Empty on a clean run — every loss repaired.
    pub degraded: Vec<String>,
    /// Total redirects absorbed by the long-lived sessions.
    pub redirects: u64,
    /// Node count at the end of the run.
    pub final_nodes: u32,
    /// Combined storage footprint of every dataset at the end of the run.
    pub footprint: StorageFootprint,
    /// Rebalances auto-triggered by the armed control plane.
    pub auto_triggers: u64,
    /// Auto-triggered rebalances that committed.
    pub auto_commits: u64,
    /// Hot buckets split by the control plane's heat budget.
    pub hot_splits: u64,
    /// Control-plane decisions suppressed by hysteresis or cooldown.
    pub suppressed: u64,
    /// Recent control-plane decisions (empty when the plane is disarmed).
    pub control_decisions: Vec<String>,
    /// Per-job progress still registered at the end of the run (a clean run
    /// drives every job to finalize, so this is normally empty; on failure
    /// it shows exactly how far the interrupted job got).
    pub jobs: Vec<String>,
    /// Executed-op trace (one line per op), for failure replay.
    pub trace: Vec<String>,
    /// Invariant violations; empty on a clean run. The first entry carries
    /// the failing step's context.
    pub violations: Vec<String>,
}

impl SoakReport {
    /// True when the run completed with zero invariant violations.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// A replay banner: the seed plus the executed op trace.
    pub fn failure_banner(&self) -> String {
        let mut out = format!("soak seed {:#x} — executed ops:\n", self.seed);
        for line in &self.trace {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
        for j in &self.jobs {
            out.push_str("job in flight: ");
            out.push_str(j);
            out.push('\n');
        }
        for d in &self.control_decisions {
            out.push_str("control: ");
            out.push_str(d);
            out.push('\n');
        }
        for d in &self.degraded {
            out.push_str("still degraded: ");
            out.push_str(d);
            out.push('\n');
        }
        for v in &self.violations {
            out.push_str("violation: ");
            out.push_str(v);
            out.push('\n');
        }
        out
    }
}

// ------------------------------------------------------- script generation

/// Generates the seeded soak script for `cfg`: one warm-up ingest per
/// dataset, churn events evenly spaced (one of them a two-round storm),
/// and the remaining slots filled with ingest bursts, query batches, index
/// warming, and crash/recover drills. The total ingest volume is spread so
/// the run lands on `cfg.target_ingest`.
pub fn generate_scenario(cfg: &SoakConfig) -> Scenario {
    let mut rng = SplitMix64::seed_from_u64(cfg.seed ^ 0x5ce2_a210);
    let mut ops: Vec<ScenarioOp> = Vec::new();
    let steps = cfg.steps.max(cfg.datasets + cfg.churn_events + 2);

    // Churn positions: evenly spaced through the body of the script,
    // leaving room for the warm-up ingests in front.
    let first = cfg.datasets + 1;
    let span = steps.saturating_sub(first).max(1);
    let mut churn_at: Vec<usize> = (0..cfg.churn_events)
        .map(|j| first + j * span / cfg.churn_events.max(1))
        .collect();
    churn_at.dedup();

    for d in 0..cfg.datasets {
        ops.push(ScenarioOp::Ingest {
            dataset: d,
            records: 0, // sized below
        });
    }
    while ops.len() < steps {
        let i = ops.len();
        if let Some(j) = churn_at.iter().position(|&p| p == i) {
            // one event in the middle of the run is a storm
            if j == cfg.churn_events / 2 && cfg.churn_events > 1 {
                ops.push(ScenarioOp::ChurnStorm {
                    rounds: 2,
                    max_moves: cfg.max_moves,
                    feed: cfg.target_ingest / (steps as u64 * 8).max(1),
                });
            } else {
                ops.push(ScenarioOp::Churn {
                    max_moves: cfg.max_moves,
                    feed: cfg.target_ingest / (steps as u64 * 8).max(1),
                });
            }
            continue;
        }
        let d = rng.gen_range(0..cfg.datasets as u64) as usize;
        match rng.gen_range(0..10) {
            0..=4 => ops.push(ScenarioOp::Ingest {
                dataset: d,
                records: 0,
            }),
            5..=7 => ops.push(ScenarioOp::Queries {
                dataset: d,
                ops: cfg.queries_per_step,
            }),
            8 => ops.push(ScenarioOp::WarmIndexes),
            _ => ops.push(ScenarioOp::CrashRecover),
        }
    }

    // Collapsed churn positions (possible on very short scripts) are made
    // up at the tail so the configured event count always executes.
    let scripted: usize = ops
        .iter()
        .map(|op| match op {
            ScenarioOp::Churn { .. } => 1,
            ScenarioOp::ChurnStorm { rounds, .. } => *rounds,
            _ => 0,
        })
        .sum();
    for _ in scripted..cfg.churn_events {
        ops.push(ScenarioOp::Churn {
            max_moves: cfg.max_moves,
            feed: 0,
        });
    }

    // Spread the ingest target over the ingest slots (churn feeds are
    // bonus volume on top).
    let slots: Vec<usize> = ops
        .iter()
        .enumerate()
        .filter_map(|(i, op)| matches!(op, ScenarioOp::Ingest { .. }).then_some(i))
        .collect();
    let per = cfg.target_ingest / slots.len() as u64;
    let mut rem = cfg.target_ingest - per * slots.len() as u64;
    for i in slots {
        if let ScenarioOp::Ingest { records, .. } = &mut ops[i] {
            *records = per + rem;
            rem = 0;
        }
    }

    // Hotspot events are spliced in at fixed fractions of the finished
    // script *after* the rng-driven body is generated, so flipping
    // `cfg.control` never perturbs which ops the seed draws — the control
    // run is the base run plus hotspots, nothing reshuffled.
    if cfg.control {
        let rounds = 8;
        let per_round = (cfg.queries_per_step * 8).max(256);
        for (i, frac) in [(1usize, 3usize), (2, 3)].iter().enumerate() {
            let at = (ops.len() * frac.0 / frac.1).max(cfg.datasets + 1) + i;
            let at = at.min(ops.len());
            ops.insert(
                at,
                ScenarioOp::Hotspot {
                    dataset: 0,
                    ops: per_round,
                    rounds,
                },
            );
        }
    }

    Scenario::new(format!("soak-{:#x}", cfg.seed), ops)
}

// ---------------------------------------------------------------- runner

struct DatasetState {
    id: u32,
    /// key → latest version written; the ground truth every read is
    /// checked against.
    model: BTreeMap<u64, u64>,
}

struct Runner<'a> {
    cfg: &'a SoakConfig,
    cluster: Cluster,
    datasets: Vec<DatasetState>,
    /// One long-lived session per dataset; only ever refreshed by the
    /// redirect protocol itself, so it goes stale across every churn event.
    sessions: Vec<Session>,
    keygen: KeyGen,
    rng: SplitMix64,
    version: u64,
    ingested: u64,
    queries: u64,
    deletes: u64,
    churn: usize,
    rebalances: usize,
    crashes: usize,
    /// Chaos grow events seen so far; the loss alternates deterministically
    /// between the freshly added node (even counts) and an established
    /// data-holding node (odd counts).
    chaos_grows: usize,
    established_losses: usize,
    repairs: u64,
    degraded_reads: u64,
    degraded_writes: u64,
    /// The armed control plane (None when `cfg.control` is off). Only
    /// ticked inside [`ScenarioOp::Hotspot`] and the post-loss repair
    /// drain, so auto-triggered jobs never overlap the churn events'
    /// hand-driven ones.
    plane: Option<ControlPlane>,
}

/// The secondary index of dataset 0: record version, big-endian, taken from
/// the value header.
const VERSION_INDEX: &str = "by_version";

fn value_for(key: u64, version: u64, len: usize) -> Bytes {
    let mut v = Vec::with_capacity(len);
    v.extend_from_slice(&key.to_be_bytes());
    v.extend_from_slice(&version.to_be_bytes());
    v.resize(len, (key % 251) as u8);
    Bytes::from(v)
}

fn version_key(version: u64) -> Key {
    Key::from_bytes(version.to_be_bytes().to_vec())
}

type StepResult = Result<(), String>;

impl<'a> Runner<'a> {
    fn new(cfg: &'a SoakConfig) -> Result<Self, String> {
        let mut cluster = Cluster::with_config(
            cfg.nodes,
            ClusterConfig {
                partitions_per_node: cfg.partitions_per_node,
                cost_model: CostModel::default(),
            },
        );
        let partitions = cfg.nodes * cfg.partitions_per_node;
        let mut datasets = Vec::new();
        let mut sessions = Vec::new();
        for d in 0..cfg.datasets {
            let mut spec = DatasetSpec::new(
                format!("soak_{d}"),
                Scheme::dynahash(cfg.max_bucket_bytes, partitions),
            );
            if d == 0 {
                spec = spec.with_secondary_index(SecondaryIndexDef::new(VERSION_INDEX, |v| {
                    v.get(8..16).map(|b| Key::from_bytes(b.to_vec()))
                }));
            }
            let id = cluster
                .create_dataset(spec)
                .map_err(|e| format!("create_dataset {d}: {e}"))?;
            sessions.push(
                cluster
                    .session(id)
                    .map_err(|e| format!("session {d}: {e}"))?,
            );
            datasets.push(DatasetState {
                id,
                model: BTreeMap::new(),
            });
        }
        let plane = if cfg.control {
            cluster.set_heat_tracking(true);
            // Reads weigh heavily so a query hotspot trips the threshold
            // even on partitions already carrying real data.
            Some(ControlPlane::new(ControlConfig {
                imbalance_threshold: 0.10,
                op_weight_bytes: 4096,
                hot_bucket_ops: 256,
                ..ControlConfig::default()
            }))
        } else {
            None
        };
        Ok(Runner {
            keygen: KeyGen::new(cfg.key_universe, KeyDist::Zipfian { s: cfg.zipf_s }, true),
            rng: SplitMix64::seed_from_u64(cfg.seed ^ 0x50a4_0001),
            cfg,
            cluster,
            datasets,
            sessions,
            version: 0,
            ingested: 0,
            queries: 0,
            deletes: 0,
            churn: 0,
            rebalances: 0,
            crashes: 0,
            chaos_grows: 0,
            established_losses: 0,
            repairs: 0,
            degraded_reads: 0,
            degraded_writes: 0,
            plane,
        })
    }

    // ------------------------------------------------------------- ops

    fn exec(&mut self, op: &ScenarioOp) -> StepResult {
        match op {
            ScenarioOp::Ingest { dataset, records } => self.op_ingest(*dataset, *records),
            ScenarioOp::Queries { dataset, ops } => self.op_queries(*dataset, *ops),
            ScenarioOp::Churn { max_moves, feed } => self.churn_event(None, *max_moves, *feed),
            ScenarioOp::ChurnStorm {
                rounds,
                max_moves,
                feed,
            } => {
                for _ in 0..*rounds {
                    self.churn_event(None, *max_moves, *feed)?;
                }
                Ok(())
            }
            ScenarioOp::AddNode { max_moves } => {
                if self.cluster.topology().num_nodes() >= self.cfg.max_nodes as usize {
                    return Ok(());
                }
                self.churn_event(Some(true), *max_moves, 0)
            }
            ScenarioOp::RemoveNode { max_moves } => {
                if self.cluster.topology().num_nodes() <= 2 {
                    return Ok(());
                }
                self.churn_event(Some(false), *max_moves, 0)
            }
            ScenarioOp::WarmIndexes => {
                let ds = self.datasets[0].id;
                self.cluster
                    .admin()
                    .warm_indexes(ds)
                    .map(|_| ())
                    .map_err(|e| format!("warm_indexes: {e}"))
            }
            ScenarioOp::CrashRecover => self.op_crash_recover(),
            ScenarioOp::Hotspot {
                dataset,
                ops,
                rounds,
            } => self.op_hotspot(*dataset, *ops, *rounds),
        }
    }

    fn op_ingest(&mut self, d: usize, n: u64) -> StepResult {
        let len = self.cfg.value_len();
        let mut batch = Vec::with_capacity(n as usize);
        let mut staged = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let key = self.keygen.draw(&mut self.rng);
            self.version += 1;
            batch.push((Key::from_u64(key), value_for(key, self.version, len)));
            staged.push((key, self.version));
        }
        match self.sessions[d].ingest(&mut self.cluster, batch) {
            Ok(_) => {
                self.datasets[d].model.extend(staged);
                self.ingested += n;
                Ok(())
            }
            Err(e) if self.write_unavailable(d, &e) => {
                // The atomic batch was refused because some records route to
                // buckets a dead node took down — lost ones (typed degraded
                // error) or ones still awaiting relocation off the corpse
                // (NodeDown until the re-planned rebalance commits). Retry
                // record by record so each put's own verdict decides, and
                // keep every refused record out of the model — that
                // exclusion is what keeps the model snapshot byte-exact as
                // a repair feed.
                for (key, version) in staged {
                    let v = value_for(key, version, len);
                    match self.sessions[d].put(&mut self.cluster, Key::from_u64(key), v) {
                        Ok(_) => {
                            self.datasets[d].model.insert(key, version);
                            self.ingested += 1;
                        }
                        Err(e) if self.write_unavailable(d, &e) => self.degraded_writes += 1,
                        Err(e) => {
                            return Err(format!("degraded-window put {key} into dataset {d}: {e}"))
                        }
                    }
                }
                Ok(())
            }
            Err(e) => Err(format!("ingest of {n} into dataset {d}: {e}")),
        }
    }

    /// True when `e` is a refusal writes may legitimately hit while a dead
    /// node's buckets are in flight: the typed degraded error for a lost
    /// bucket, or NodeDown/NodeLost for a bucket still awaiting relocation
    /// off the corpse — and only while some node genuinely is dead.
    /// Anything else stays a violation.
    fn write_unavailable(&self, d: usize, e: &ClusterError) -> bool {
        if self.degraded_hit(d, e) {
            return true;
        }
        let some_node_dead = self
            .cluster
            .topology()
            .nodes()
            .iter()
            .any(|n| !self.cluster.node_is_alive(*n));
        some_node_dead && matches!(e, ClusterError::NodeDown(_) | ClusterError::NodeLost(_))
    }

    /// True when `e` is the typed degraded error for a bucket the fault
    /// stats actually track as lost on dataset `d` — anything else stays a
    /// violation.
    fn degraded_hit(&self, d: usize, e: &ClusterError) -> bool {
        match e {
            ClusterError::BucketDegraded { dataset, bucket } => {
                *dataset == self.datasets[d].id
                    && self
                        .cluster
                        .fault_stats()
                        .degraded_buckets(*dataset)
                        .contains(bucket)
            }
            _ => false,
        }
    }

    fn op_queries(&mut self, d: usize, ops: u64) -> StepResult {
        let len = self.cfg.value_len();
        for _ in 0..ops {
            self.queries += 1;
            match self.rng.gen_range(0..8) {
                // point read, present or absent, against the model; a typed
                // degraded answer for a genuinely lost bucket is correct
                // service, not a violation
                0..=4 => {
                    let key = self.keygen.draw(&mut self.rng);
                    let got = match self.sessions[d].get(&self.cluster, &Key::from_u64(key)) {
                        Ok(got) => got,
                        Err(e) if self.degraded_hit(d, &e) => {
                            self.degraded_reads += 1;
                            continue;
                        }
                        Err(e) => return Err(format!("get {key} on dataset {d}: {e}")),
                    };
                    let want = self.datasets[d]
                        .model
                        .get(&key)
                        .map(|v| value_for(key, *v, len));
                    if got != want {
                        return Err(format!(
                            "dataset {d} key {key}: read {got:?}, model says {want:?}"
                        ));
                    }
                }
                // single put with read-your-writes; a refused degraded write
                // leaves the model untouched so the repair feed stays exact
                5 => {
                    let key = self.keygen.draw(&mut self.rng);
                    self.version += 1;
                    let v = value_for(key, self.version, len);
                    match self.sessions[d].put(&mut self.cluster, Key::from_u64(key), v.clone()) {
                        Ok(_) => {}
                        Err(e) if self.degraded_hit(d, &e) => {
                            self.degraded_writes += 1;
                            continue;
                        }
                        Err(e) => return Err(format!("put {key} on dataset {d}: {e}")),
                    }
                    self.datasets[d].model.insert(key, self.version);
                    self.ingested += 1;
                    let got = self.sessions[d]
                        .get(&self.cluster, &Key::from_u64(key))
                        .map_err(|e| format!("read-back {key} on dataset {d}: {e}"))?;
                    if got.as_ref() != Some(&v) {
                        return Err(format!("dataset {d} lost its own write of key {key}"));
                    }
                }
                // delete, checked against the model; the model entry only
                // goes once the delete actually lands
                6 => {
                    let key = self.keygen.draw(&mut self.rng);
                    let was = self.datasets[d].model.get(&key).copied();
                    let hit = match self.sessions[d].delete(&mut self.cluster, &Key::from_u64(key))
                    {
                        Ok(hit) => hit,
                        Err(e) if self.degraded_hit(d, &e) => {
                            self.degraded_writes += 1;
                            continue;
                        }
                        Err(e) => return Err(format!("delete {key} on dataset {d}: {e}")),
                    };
                    if hit != was.is_some() {
                        return Err(format!(
                            "dataset {d} delete of key {key}: hit={hit}, model had {was:?}"
                        ));
                    }
                    if was.is_some() {
                        self.datasets[d].model.remove(&key);
                        self.deletes += 1;
                    }
                }
                // bounded secondary range scan on the indexed dataset
                _ => {
                    let lo = self.rng.gen_range(0..self.version.max(1));
                    let hi = lo + self.rng.gen_range(1..1_000);
                    let (lo_k, hi_k) = (version_key(lo), version_key(hi));
                    let ds0 = &mut self.sessions[0];
                    let hits = ds0
                        .index_scan(&mut self.cluster, VERSION_INDEX, Some(&lo_k), Some(&hi_k))
                        .map_err(|e| format!("index_scan [{lo},{hi}]: {e}"))?;
                    for (p, entries) in hits {
                        for e in entries {
                            if e.secondary < lo_k || e.secondary > hi_k {
                                return Err(format!(
                                    "index_scan [{lo},{hi}] on {p} returned out-of-range \
                                     secondary {:?}",
                                    e.secondary
                                ));
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn op_crash_recover(&mut self) -> StepResult {
        let nodes = self.cluster.topology().nodes();
        let victim = nodes[self.rng.gen_range(0..nodes.len() as u64) as usize];
        self.cluster
            .crash_node(victim)
            .map_err(|e| format!("crash {victim}: {e}"))?;
        if self.cluster.node_is_alive(victim) {
            return Err(format!("{victim} still alive after crash"));
        }
        self.cluster.recover_all_nodes();
        self.crashes += 1;
        self.sampled_session_reads("after crash/recover")
    }

    /// A sustained query hotspot with the control plane watching: each round
    /// hammers a tiny fixed key set (concentrating read heat on a few
    /// buckets) and then ticks the plane once, so the imbalance is sustained
    /// across the hysteresis window and the plane auto-triggers splits and a
    /// heat-aware migration. Afterwards the plane is ticked until idle and
    /// every auto-committed rebalance is integrity-checked.
    fn op_hotspot(&mut self, d: usize, ops: u64, rounds: u64) -> StepResult {
        let Some(mut plane) = self.plane.take() else {
            return Ok(());
        };
        let committed_before = plane.status().committed_jobs;
        let decisions_before = plane.status().decisions.len();
        let result = self.drive_hotspot(&mut plane, d, ops, rounds);
        let status = plane.status();
        self.plane = Some(plane);
        result?;

        // Every rebalance the plane committed during this event must pass
        // the same integrity battery the churn events' hand-driven jobs do.
        if status.committed_jobs > committed_before {
            for dec in status.decisions.iter().skip(decisions_before) {
                if let ControlDecision::Committed {
                    dataset, rebalance, ..
                } = dec
                {
                    self.cluster
                        .check_rebalance_integrity(*dataset, *rebalance)
                        .map_err(|e| format!("integrity of auto rebalance: {e}"))?;
                }
            }
        }
        self.sampled_reads_on(d, "after hotspot")?;
        self.deep_checks("after hotspot event")
    }

    fn drive_hotspot(
        &mut self,
        plane: &mut ControlPlane,
        d: usize,
        ops: u64,
        rounds: u64,
    ) -> StepResult {
        let len = self.cfg.value_len();
        // Three fixed keys: hot enough to stand out, few enough that the
        // heat lands on at most three buckets.
        let hot: Vec<u64> = (0..3).map(|_| self.keygen.draw(&mut self.rng)).collect();
        for round in 0..rounds {
            for i in 0..ops {
                self.queries += 1;
                let key = hot[(i % hot.len() as u64) as usize];
                let got = self.sessions[d]
                    .get(&self.cluster, &Key::from_u64(key))
                    .map_err(|e| format!("hot get {key} on dataset {d}: {e}"))?;
                let want = self.datasets[d]
                    .model
                    .get(&key)
                    .map(|v| value_for(key, *v, len));
                if got != want {
                    return Err(format!(
                        "hotspot round {round}: dataset {d} key {key}: read {got:?}, \
                         model says {want:?}"
                    ));
                }
            }
            plane
                .tick(&mut self.cluster)
                .map_err(|e| format!("control tick in hotspot round {round}: {e}"))?;
        }
        // The queries stop; the plane must finish what it started within a
        // bounded tail.
        self.settle_plane(plane, "after a hotspot")
    }

    /// Ticks the plane until no job is in flight and nothing *actionable*
    /// happened this tick — suppression chatter about a residual byte
    /// imbalance the planner already found unimprovable may continue
    /// indefinitely by design, and does not block the script.
    fn settle_plane(&mut self, plane: &mut ControlPlane, when: &str) -> StepResult {
        for _ in 0..100 {
            let report = plane
                .tick(&mut self.cluster)
                .map_err(|e| format!("control tick settling {when}: {e}"))?;
            let busy = report.job_in_flight
                || report.decisions.iter().any(|dec| {
                    matches!(
                        dec,
                        ControlDecision::Triggered { .. }
                            | ControlDecision::DeferredByBudget { .. }
                            | ControlDecision::HotSplit { .. }
                            | ControlDecision::Replanned { .. }
                            | ControlDecision::Committed { .. }
                            | ControlDecision::Aborted { .. }
                            | ControlDecision::Repaired { .. }
                    )
                });
            if !busy {
                return Ok(());
            }
        }
        Err(format!(
            "control plane failed to settle within 100 ticks {when}"
        ))
    }

    /// Restores every dataset the event's loss degraded, from its model
    /// snapshot — exact ground truth, because writes to lost buckets are
    /// refused and so the lost content cannot drift. With an armed control
    /// plane the snapshot is registered as the dataset's repair feed and
    /// the plane's health tick auto-triggers the repair; without one the
    /// admin one-shot runs directly. Returns the number of buckets
    /// restored.
    fn repair_degraded(&mut self, when: &str) -> Result<u64, String> {
        let mut plane = self.plane.take();
        let result = self.repair_degraded_inner(plane.as_mut(), when);
        self.plane = plane;
        result
    }

    fn repair_degraded_inner(
        &mut self,
        mut plane: Option<&mut ControlPlane>,
        when: &str,
    ) -> Result<u64, String> {
        let len = self.cfg.value_len();
        let before = self.cluster.fault_stats().repaired_buckets;
        for i in 0..self.datasets.len() {
            let id = self.datasets[i].id;
            if self.cluster.fault_stats().degraded_buckets(id).is_empty() {
                continue;
            }
            let feed: Vec<(Key, Bytes)> = self.datasets[i]
                .model
                .iter()
                .map(|(k, v)| (Key::from_u64(*k), value_for(*k, *v, len)))
                .collect();
            match plane.as_deref_mut() {
                Some(plane) => {
                    plane.set_repair_feed(id, feed);
                    for _ in 0..10 {
                        if self.cluster.fault_stats().degraded_buckets(id).is_empty() {
                            break;
                        }
                        plane.tick(&mut self.cluster).map_err(|e| {
                            format!("{when}: control tick repairing dataset {id}: {e}")
                        })?;
                    }
                    plane.clear_repair_feed(id);
                    if !self.cluster.fault_stats().degraded_buckets(id).is_empty() {
                        return Err(format!(
                            "{when}: the armed plane left dataset {id} degraded"
                        ));
                    }
                }
                None => {
                    let report = self
                        .cluster
                        .admin()
                        .repair_dataset(id, &feed)
                        .map_err(|e| format!("{when}: repair of dataset {id}: {e}"))?;
                    if report.is_noop() {
                        return Err(format!(
                            "{when}: repair of degraded dataset {id} was a no-op"
                        ));
                    }
                }
            }
            self.repairs += 1;
        }
        // The repair ticks may also have let the plane start a heat-driven
        // migration; drain it so the event ends with no job in flight.
        if let Some(plane) = plane {
            self.settle_plane(plane, when)?;
        }
        Ok(self.cluster.fault_stats().repaired_buckets - before)
    }

    // ----------------------------------------------------------- churn

    /// One churn event: grow or shrink (deciding by current size when
    /// `direction` is None), rebalancing every dataset with its own
    /// concurrent job, waves interleaved, feeds and a seeded fault schedule
    /// mid-movement, then the full invariant battery.
    fn churn_event(&mut self, direction: Option<bool>, max_moves: usize, feed: u64) -> StepResult {
        let grow = direction
            .unwrap_or_else(|| self.cluster.topology().num_nodes() <= self.cfg.nodes as usize);
        let (target, victim, new_node) = if grow {
            let n = self
                .cluster
                .add_node()
                .map_err(|e| format!("add_node: {e}"))?;
            (self.cluster.topology().clone(), None, Some(n))
        } else {
            let victim = *self
                .cluster
                .topology()
                .nodes()
                .last()
                .ok_or("empty topology")?;
            (self.cluster.topology_without(victim), Some(victim), None)
        };

        // One concurrent job per dataset.
        let mut jobs: Vec<RebalanceJob> = Vec::new();
        for d in &self.datasets {
            let mut job = RebalanceJob::plan(&mut self.cluster, d.id, &target, max_moves)
                .map_err(|e| format!("plan dataset {}: {e}", d.id))?;
            job.init(&mut self.cluster)
                .map_err(|e| format!("init dataset {}: {e}", d.id))?;
            jobs.push(job);
        }

        // The fault schedule for this event. Every decision is drawn from
        // the scenario rng, so the same seed replays the same faults at the
        // same wave boundaries. Chaos mode layers transient ship failures
        // (capped below the retry budget, so always absorbed) and one slow
        // node (absorbed by straggler speculation) on top, and turns the
        // grow-side crash into a permanent loss: even-numbered chaos grows
        // lose the node just added — a pure destination, which re-planning
        // cancels back to the live sources with zero data loss — while
        // odd-numbered grows lose an established node, taking the sole
        // copies of its resident buckets with it and opening the degraded
        // window the repair plane exists for.
        let mut schedule = FaultSchedule::seeded(self.rng.next_u64());
        let mut lost: Option<NodeId> = None;
        if self.cfg.chaos {
            schedule = schedule.with_transient(150, 2);
            let nodes = self.cluster.topology().nodes();
            let slow = nodes[self.rng.gen_range(0..nodes.len() as u64) as usize];
            schedule = schedule.with_slow_node(slow, 8);
        }
        match new_node {
            Some(n) if self.cfg.chaos => {
                // Always after the first round: every rebalance with moves
                // runs at least one, so the loss is guaranteed to fire.
                let victim = if self.chaos_grows % 2 == 1 {
                    let established: Vec<NodeId> = self
                        .cluster
                        .topology()
                        .nodes()
                        .into_iter()
                        .filter(|m| *m != n)
                        .collect();
                    established[self.rng.gen_range(0..established.len() as u64) as usize]
                } else {
                    n
                };
                self.chaos_grows += 1;
                schedule = schedule.with_wave_fault(0, WaveFault::Lose(victim));
            }
            _ => {
                if self.rng.gen_range(0..2) == 0 {
                    let nodes = self.cluster.topology().nodes();
                    let n = nodes[self.rng.gen_range(0..nodes.len() as u64) as usize];
                    schedule =
                        schedule.with_wave_fault(self.rng.gen_range(0..2), WaveFault::Crash(n));
                }
            }
        }
        self.cluster.set_fault_plane(schedule);

        // Interleave the jobs' waves round-robin; after each round, consume
        // the fault scheduled for it (re-planning every job immediately on a
        // loss, before any feed can replicate into the dead node), then keep
        // the session-driven feeds flowing.
        let mut round = 0u64;
        loop {
            let mut progressed = false;
            for (i, job) in jobs.iter_mut().enumerate() {
                if !job.has_remaining_waves() {
                    continue;
                }
                progressed = true;
                job.run_wave(&mut self.cluster)
                    .map_err(|e| format!("wave on dataset {i}: {e}"))?;
            }
            if !progressed {
                break;
            }
            if let Some(fault) = self.cluster.take_wave_fault(round) {
                match fault {
                    WaveFault::Crash(n) => {
                        self.cluster
                            .crash_node(n)
                            .map_err(|e| format!("mid-rebalance crash {n}: {e}"))?;
                        self.cluster.recover_all_nodes();
                        self.crashes += 1;
                    }
                    WaveFault::Lose(n) => {
                        self.cluster
                            .lose_node(n)
                            .map_err(|e| format!("mid-rebalance loss of {n}: {e}"))?;
                        for job in jobs.iter_mut() {
                            let ds = job.dataset();
                            job.replan_wave(&mut self.cluster)
                                .map_err(|e| format!("replan dataset {ds} after {n}: {e}"))?;
                        }
                        if Some(n) != new_node {
                            self.established_losses += 1;
                        }
                        lost = Some(n);
                    }
                }
            }
            if feed > 0 {
                for d in 0..self.datasets.len() {
                    self.op_ingest(d, feed)?;
                }
            }
            round += 1;
        }
        self.cluster.clear_fault_plane();

        let mut buckets_moved = 0usize;
        let mut finished = Vec::new();
        for mut job in jobs {
            let ds = job.dataset();
            job.prepare(&mut self.cluster)
                .map_err(|e| format!("prepare dataset {ds}: {e}"))?;
            let outcome = job
                .decide(&mut self.cluster)
                .map_err(|e| format!("decide dataset {ds}: {e}"))?;
            if outcome != RebalanceOutcome::Committed {
                return Err(format!(
                    "dataset {ds} rebalance did not commit: {outcome:?}"
                ));
            }
            job.commit(&mut self.cluster)
                .map_err(|e| format!("commit dataset {ds}: {e}"))?;
            let report = job
                .finalize(&mut self.cluster)
                .map_err(|e| format!("finalize dataset {ds}: {e}"))?;
            buckets_moved += report.buckets_moved;
            finished.push((ds, report.rebalance_id));
            self.rebalances += 1;
        }
        // A lost node must leave the topology before the integrity battery
        // runs: its orphaned partitions would otherwise double-count the
        // buckets the re-plan moved to survivors.
        if let Some(n) = lost {
            self.cluster
                .remove_lost_node(n)
                .map_err(|e| format!("remove lost {n}: {e}"))?;
        }
        for (ds, rebalance_id) in finished {
            self.cluster
                .check_rebalance_integrity(ds, rebalance_id)
                .map_err(|e| format!("integrity after rebalance of dataset {ds}: {e}"))?;
        }
        // If the loss took established buckets down with it, repair every
        // degraded dataset before the event ends: the soak's contract is
        // that degraded windows are transient.
        let repaired = self.repair_degraded("after churn event")?;
        if let Some(victim) = victim {
            self.cluster
                .decommission_node(victim)
                .map_err(|e| format!("decommission {victim}: {e}"))?;
        }
        self.churn += 1;

        // Convergence: the stale sessions must absorb the move within the
        // redirect bound while answering correctly. A repair installs its
        // own directory, so each repaired bucket widens the bound by one.
        let bound = (buckets_moved as u64).max(1) + 1 + repaired;
        for d in 0..self.datasets.len() {
            let before = self.sessions[d].metrics().redirects;
            self.sampled_reads_on(d, "post-churn convergence")?;
            let took = self.sessions[d].metrics().redirects - before;
            if took > bound {
                return Err(format!(
                    "session {d} took {took} redirects converging (bound {bound}, \
                     {buckets_moved} buckets moved)"
                ));
            }
        }
        self.deep_checks("after churn event")
    }

    // ------------------------------------------------------ invariants

    /// The cheap battery, run between every pair of script ops: directory
    /// self-consistency per dataset, sampled stale-session reads vs the
    /// model, and the fresh-session zero-redirect guarantee.
    fn continuous_checks(&mut self, when: &str) -> StepResult {
        for d in 0..self.datasets.len() {
            let id = self.datasets[d].id;
            self.cluster
                .admin()
                .check_directory_invariants(id)
                .map_err(|e| format!("{when}: directory of dataset {id}: {e}"))?;
        }
        self.sampled_session_reads(when)?;
        let ds0 = self.datasets[0].id;
        let mut fresh = self
            .cluster
            .session(ds0)
            .map_err(|e| format!("{when}: fresh session: {e}"))?;
        for _ in 0..4 {
            let key = self.keygen.draw(&mut self.rng);
            fresh
                .get(&self.cluster, &Key::from_u64(key))
                .map_err(|e| format!("{when}: fresh get {key}: {e}"))?;
        }
        if fresh.metrics().redirects != 0 {
            return Err(format!("{when}: a fresh session redirected"));
        }
        Ok(())
    }

    fn sampled_session_reads(&mut self, when: &str) -> StepResult {
        for d in 0..self.datasets.len() {
            self.sampled_reads_on(d, when)?;
        }
        Ok(())
    }

    fn sampled_reads_on(&mut self, d: usize, when: &str) -> StepResult {
        let len = self.cfg.value_len();
        for _ in 0..self.cfg.sample_reads {
            let key = self.keygen.draw(&mut self.rng);
            let got = match self.sessions[d].get(&self.cluster, &Key::from_u64(key)) {
                Ok(got) => got,
                Err(e) if self.degraded_hit(d, &e) => {
                    self.degraded_reads += 1;
                    continue;
                }
                Err(e) => return Err(format!("{when}: get {key} on dataset {d}: {e}")),
            };
            let want = self.datasets[d]
                .model
                .get(&key)
                .map(|v| value_for(key, *v, len));
            if got != want {
                return Err(format!(
                    "{when}: dataset {d} key {key}: read {got:?}, model says {want:?}"
                ));
            }
        }
        Ok(())
    }

    /// The heavyweight battery, run at churn boundaries and at the end:
    /// route-every-record consistency and exact live counts.
    fn deep_checks(&mut self, when: &str) -> StepResult {
        for d in &self.datasets {
            // Degraded windows are transient by contract: every churn event
            // repairs its own loss, so nothing may still be degraded here.
            let lost = self.cluster.fault_stats().degraded_buckets(d.id);
            if !lost.is_empty() {
                return Err(format!(
                    "{when}: dataset {} still degraded (lost buckets {lost:?})",
                    d.id
                ));
            }
            self.cluster
                .check_dataset_consistency(d.id)
                .map_err(|e| format!("{when}: consistency of dataset {}: {e}", d.id))?;
            let live = self
                .cluster
                .dataset_len(d.id)
                .map_err(|e| format!("{when}: len of dataset {}: {e}", d.id))?;
            if live != d.model.len() {
                return Err(format!(
                    "{when}: dataset {} holds {live} records, model says {}",
                    d.id,
                    d.model.len()
                ));
            }
        }
        Ok(())
    }

    /// Byte-for-byte scan-vs-model comparison through each stale session.
    fn final_scan_check(&mut self) -> StepResult {
        let len = self.cfg.value_len();
        for d in 0..self.datasets.len() {
            let (contents, raw) = self.sessions[d]
                .collect_records(&self.cluster)
                .map_err(|e| format!("final scan of dataset {d}: {e}"))?;
            if raw != contents.len() {
                return Err(format!(
                    "final scan of dataset {d}: {raw} raw records for {} keys \
                     (a key is visible twice)",
                    contents.len()
                ));
            }
            let model = &self.datasets[d].model;
            if contents.len() != model.len() {
                return Err(format!(
                    "final scan of dataset {d}: {} records, model says {}",
                    contents.len(),
                    model.len()
                ));
            }
            for (k, v) in model {
                if contents.get(&Key::from_u64(*k)) != Some(&value_for(*k, *v, len)) {
                    return Err(format!("final scan of dataset {d}: key {k} diverges"));
                }
            }
        }
        Ok(())
    }

    fn footprint(&mut self) -> StorageFootprint {
        let mut total = StorageFootprint::default();
        for d in 0..self.datasets.len() {
            let id = self.datasets[d].id;
            if let Ok(fp) = self.cluster.admin().storage_stats(id) {
                total.absorb(&fp);
            }
        }
        total
    }
}

// ------------------------------------------------------------------ entry

/// Executes a scenario script under `cfg`, checking the continuous
/// invariants between every pair of ops and the deep battery at the end.
/// Never panics on an invariant violation — the report carries the trace
/// and violations instead (a panic escaping the cluster is converted too).
pub fn run_scenario(cfg: &SoakConfig, scenario: &Scenario) -> SoakReport {
    let mut trace = Vec::new();
    let mut violations = Vec::new();
    let mut steps_run = 0usize;

    let mut runner = match Runner::new(cfg) {
        Ok(r) => r,
        Err(v) => {
            return SoakReport {
                seed: cfg.seed,
                steps_run: 0,
                records_ingested: 0,
                live_records: 0,
                queries_run: 0,
                deletes: 0,
                churn_events: 0,
                rebalances: 0,
                crashes: 0,
                transient_faults: 0,
                fault_retries: 0,
                reroutes: 0,
                reshipped: 0,
                lost_nodes: 0,
                established_losses: 0,
                speculated: 0,
                speculation_wins: 0,
                repairs: 0,
                repaired_buckets: 0,
                degraded_reads: 0,
                degraded_writes: 0,
                degraded: Vec::new(),
                redirects: 0,
                final_nodes: 0,
                footprint: StorageFootprint::default(),
                auto_triggers: 0,
                auto_commits: 0,
                hot_splits: 0,
                suppressed: 0,
                control_decisions: Vec::new(),
                jobs: Vec::new(),
                trace,
                violations: vec![v],
            };
        }
    };

    for (i, op) in scenario.ops.iter().enumerate() {
        trace.push(format!("step {i}: {op:?}"));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            runner.exec(op).and_then(|()| {
                runner.continuous_checks(&format!("continuous checks after step {i}"))
            })
        }));
        match outcome {
            Ok(Ok(())) => steps_run += 1,
            Ok(Err(v)) => {
                violations.push(format!("step {i} ({op:?}): {v}"));
                break;
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| panic.downcast_ref::<&str>().copied())
                    .unwrap_or("<non-string panic>");
                violations.push(format!("step {i} ({op:?}) panicked: {msg}"));
                break;
            }
        }
    }
    if violations.is_empty() {
        if let Err(v) = runner.deep_checks("end of run") {
            violations.push(v);
        }
    }
    if violations.is_empty() {
        if let Err(v) = runner.final_scan_check() {
            violations.push(v);
        }
    }

    let live = runner.datasets.iter().map(|d| d.model.len() as u64).sum();
    let redirects = runner.sessions.iter().map(|s| s.metrics().redirects).sum();
    let faults = runner.cluster.fault_stats().clone();
    let control = runner.plane.as_ref().map(|p| p.status());
    let jobs: Vec<String> = runner
        .cluster
        .admin()
        .health()
        .jobs
        .iter()
        .map(|j| j.to_string())
        .collect();
    SoakReport {
        seed: cfg.seed,
        steps_run,
        records_ingested: runner.ingested,
        live_records: live,
        queries_run: runner.queries,
        deletes: runner.deletes,
        churn_events: runner.churn,
        rebalances: runner.rebalances,
        crashes: runner.crashes,
        transient_faults: faults.transient_faults,
        fault_retries: faults.retries,
        reroutes: faults.reroutes,
        reshipped: faults.reshipped,
        lost_nodes: faults.lost_nodes.len(),
        established_losses: runner.established_losses,
        speculated: faults.speculated,
        speculation_wins: faults.speculation_wins,
        repairs: runner.repairs,
        repaired_buckets: faults.repaired_buckets,
        degraded_reads: runner.degraded_reads,
        degraded_writes: runner.degraded_writes,
        degraded: faults
            .lost_buckets
            .iter()
            .filter(|(_, b)| !b.is_empty())
            .map(|(ds, b)| format!("dataset {ds}: {b:?}"))
            .collect(),
        redirects,
        final_nodes: runner.cluster.topology().num_nodes() as u32,
        footprint: runner.footprint(),
        auto_triggers: control.as_ref().map_or(0, |s| s.triggers),
        auto_commits: control.as_ref().map_or(0, |s| s.committed_jobs),
        hot_splits: control.as_ref().map_or(0, |s| s.hot_splits),
        suppressed: control
            .as_ref()
            .map_or(0, |s| s.suppressed_hysteresis + s.suppressed_cooldown),
        control_decisions: control.as_ref().map_or_else(Vec::new, |s| {
            s.decisions.iter().map(|d| d.to_string()).collect()
        }),
        jobs,
        trace,
        violations,
    }
}

/// Generates the seeded script for `cfg` and runs it.
pub fn run_soak(cfg: &SoakConfig) -> SoakReport {
    run_scenario(cfg, &generate_scenario(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipfian_keygen_is_skewed_and_stable() {
        let keygen = KeyGen::new(1 << 16, KeyDist::Zipfian { s: 1.1 }, true);
        let mut rng = SplitMix64::seed_from_u64(7);
        let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
        for _ in 0..20_000 {
            *counts.entry(keygen.draw(&mut rng)).or_insert(0) += 1;
        }
        let max = counts.values().max().copied().unwrap_or(0);
        // the hottest key must dominate a uniform draw by a wide margin
        assert!(max > 1_000, "hottest key drawn {max} times");
        // scrambling must not lose distinctness for the hot ranks
        assert!(counts.len() > 1_000, "only {} distinct keys", counts.len());
    }

    #[test]
    fn generated_script_hits_the_ingest_target_and_churn_count() {
        let cfg = SoakConfig::smoke(42);
        let s = generate_scenario(&cfg);
        let ingest: u64 = s
            .ops
            .iter()
            .map(|op| match op {
                ScenarioOp::Ingest { records, .. } => *records,
                _ => 0,
            })
            .sum();
        assert_eq!(ingest, cfg.target_ingest);
        let churn: usize = s
            .ops
            .iter()
            .map(|op| match op {
                ScenarioOp::Churn { .. } => 1,
                ScenarioOp::ChurnStorm { rounds, .. } => *rounds,
                _ => 0,
            })
            .sum();
        assert!(churn >= cfg.churn_events, "{churn} churn events scripted");
        // the script is a pure function of the config
        let again = generate_scenario(&cfg);
        assert_eq!(format!("{:?}", s.ops), format!("{:?}", again.ops));
    }

    #[test]
    fn chaos_smoke_soak_replans_losses_and_stays_clean() {
        let mut cfg = SoakConfig::smoke(0x50a6_0002);
        cfg.chaos = true;
        // The stock smoke profile is too small to split buckets, so churn
        // plans no moves and the mid-movement faults have nothing to hit;
        // shrink the bucket cap until rebalances actually transfer data.
        cfg.max_bucket_bytes = 4 * 1024;
        let report = run_soak(&cfg);
        assert!(report.passed(), "{}", report.failure_banner());
        assert!(report.lost_nodes >= 1, "chaos run must lose a node");
        assert!(report.reroutes >= 1, "a loss must be re-planned");
        assert_eq!(
            report.transient_faults, report.fault_retries,
            "every injected transient must be absorbed by a retry"
        );
        assert!(
            report.degraded.is_empty(),
            "no dataset may end the run degraded: {:?}",
            report.degraded
        );
        if report.established_losses > 0 {
            assert!(
                report.repaired_buckets > 0,
                "an established-node loss must force a repair"
            );
        }
        // identical seed without chaos: the fault counters stay zero
        let mut quiet = cfg;
        quiet.chaos = false;
        let baseline = run_soak(&quiet);
        assert!(baseline.passed(), "{}", baseline.failure_banner());
        assert_eq!(baseline.transient_faults, 0);
        assert_eq!(baseline.lost_nodes, 0);
    }

    #[test]
    fn chaos_soak_loses_established_nodes_and_auto_repairs() {
        let mut cfg = SoakConfig::smoke(0x50a6_0004);
        cfg.chaos = true;
        cfg.control = true;
        cfg.max_bucket_bytes = 4 * 1024;
        // A hand-written script with two explicit grows: chaos alternates
        // the mid-rebalance loss, so the first grow loses the node just
        // added (zero data loss) and the second loses an established
        // data-holding node — the degraded window the armed control plane
        // must auto-repair from the runner's registered model snapshot.
        let script = Scenario {
            name: "established-loss-auto-repair".into(),
            ops: vec![
                ScenarioOp::Ingest {
                    dataset: 0,
                    records: 6_000,
                },
                ScenarioOp::Ingest {
                    dataset: 1,
                    records: 6_000,
                },
                ScenarioOp::AddNode { max_moves: 4 },
                ScenarioOp::Queries {
                    dataset: 0,
                    ops: 120,
                },
                ScenarioOp::AddNode { max_moves: 4 },
                ScenarioOp::Queries {
                    dataset: 1,
                    ops: 120,
                },
            ],
        };
        let report = run_scenario(&cfg, &script);
        assert!(report.passed(), "{}", report.failure_banner());
        assert!(
            report.established_losses >= 1,
            "the second chaos grow must lose an established node"
        );
        assert!(
            report.repaired_buckets > 0,
            "losing an established node must degrade buckets that repair restores"
        );
        assert!(
            report.repairs >= 1,
            "the armed plane must have run at least one repair"
        );
        assert!(
            report.degraded.is_empty(),
            "no dataset may end the run degraded: {:?}",
            report.degraded
        );
        // a clean run leaves no job half-done
        assert!(report.jobs.is_empty(), "{:?}", report.jobs);
    }

    #[test]
    fn hotspot_soak_auto_triggers_and_converges() {
        let mut cfg = SoakConfig::smoke(0x50a6_0003);
        cfg.control = true;
        // Small buckets so the auto-planned migration has real moves to make.
        cfg.max_bucket_bytes = 4 * 1024;
        let report = run_soak(&cfg);
        assert!(report.passed(), "{}", report.failure_banner());
        assert!(
            report.auto_triggers >= 1,
            "the sustained hotspot must auto-trigger a rebalance\n{}",
            report.failure_banner()
        );
        assert!(
            report.auto_commits >= 1,
            "an auto-triggered rebalance must commit\n{}",
            report.failure_banner()
        );
        assert!(
            report.suppressed >= 1,
            "hysteresis must hold the first imbalanced ticks back\n{}",
            report.failure_banner()
        );
        // a clean run leaves no job half-done
        assert!(report.jobs.is_empty(), "{:?}", report.jobs);
    }

    #[test]
    fn smoke_soak_passes_cleanly() {
        let report = run_soak(&SoakConfig::smoke(0x50a6_0001));
        assert!(report.passed(), "{}", report.failure_banner());
        assert_eq!(
            report.steps_run,
            generate_scenario(&SoakConfig::smoke(0x50a6_0001)).ops.len()
        );
        assert!(report.records_ingested >= 24_000);
        assert!(report.churn_events >= 2);
        assert!(report.rebalances >= report.churn_events * 2);
        assert!(report.live_records > 0);
        assert!(report.footprint.records > 0);
    }
}
