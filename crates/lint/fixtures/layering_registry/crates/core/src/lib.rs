pub fn f() {}
