//! Seeded property tests of the control plane's decision invariants.
//!
//! Whatever seeded workload the decision loop faces — skewed ingest, query
//! hotspots, nodes joining, a node lost mid-wave — the logged decision
//! stream must obey the protocol: every trigger earns its hysteresis streak,
//! no trigger lands inside a cooldown, no migration window exceeds the
//! budget, the status counters agree exactly with the decision stream, and
//! every committed auto-job leaves the dataset routable with zero lost
//! records.

mod common;

use std::collections::BTreeSet;

use common::{assert_committed_set, check_seeded_cases, record, test_cluster, CASES};
use dynahash::cluster::{ControlConfig, ControlDecision, ControlPlane, DatasetSpec};
use dynahash::core::{MigrationBudget, Scheme};
use dynahash::lsm::entry::Key;
use dynahash::lsm::rng::SplitMix64;

/// Small buckets so even a few hundred records split into enough buckets
/// for Algorithm 2 to balance onto the joining nodes.
fn small_scheme() -> Scheme {
    Scheme::dynahash(4 * 1024, 8)
}

#[derive(Debug)]
struct LoopParams {
    records: u64,
    hot_ops: u64,
    grow: u32,
    ticks: u64,
    budget_buckets: usize,
    window_ticks: u64,
}

fn random_loop_params(rng: &mut SplitMix64) -> LoopParams {
    LoopParams {
        records: rng.gen_range(300..900),
        hot_ops: rng.gen_range(0..3000),
        grow: rng.gen_range(1..3) as u32,
        ticks: rng.gen_range(80..140),
        budget_buckets: rng.gen_range(1..4) as usize,
        window_ticks: rng.gen_range(2..5),
    }
}

/// Builds the workload, runs the decision loop for a fixed number of ticks,
/// and checks every protocol invariant against the complete decision stream
/// (collected from the per-tick reports, so nothing is lost to the bounded
/// status log).
fn run_decision_loop(seed: u64, p: &LoopParams) {
    let mut cluster = test_cluster(3);
    cluster.set_heat_tracking(true);
    let ds = cluster
        .create_dataset(DatasetSpec::new("events", small_scheme()))
        .unwrap();
    let mut session = cluster.session(ds).unwrap();
    session
        .ingest(&mut cluster, (0..p.records).map(record))
        .unwrap();
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x0c0f_fee0);
    for _ in 0..p.hot_ops {
        let key = rng.gen_range(0..4);
        session.get(&cluster, &Key::from_u64(key)).unwrap();
    }
    for _ in 0..p.grow {
        cluster.add_node().unwrap();
    }

    let config = ControlConfig {
        budget: MigrationBudget {
            max_buckets_per_window: p.budget_buckets,
            max_bytes_per_window: 1 << 30,
            window_ticks: p.window_ticks,
        },
        ..ControlConfig::default()
    };
    let mut plane = ControlPlane::new(config);
    let mut stream: Vec<ControlDecision> = Vec::new();
    for _ in 0..p.ticks {
        let report = plane.tick(&mut cluster).unwrap();
        stream.extend(report.decisions);
    }
    let status = plane.status();

    // The empty joining nodes push the imbalance far over the threshold, so
    // the loop must actually have worked: a trigger, a commit, and the
    // hysteresis streak leading up to the first trigger.
    assert!(status.triggers >= 1, "the plane never triggered");
    assert!(status.committed_jobs >= 1, "no auto-job committed");

    // Counters agree exactly with the decision stream: every suppressed or
    // acted-on decision is logged, none invented.
    let count =
        |pred: fn(&ControlDecision) -> bool| stream.iter().filter(|d| pred(d)).count() as u64;
    assert_eq!(
        status.triggers,
        count(|d| matches!(d, ControlDecision::Triggered { .. }))
    );
    assert_eq!(
        status.suppressed_hysteresis,
        count(|d| matches!(d, ControlDecision::SuppressedByHysteresis { .. }))
    );
    assert_eq!(
        status.suppressed_cooldown,
        count(|d| matches!(d, ControlDecision::SuppressedByCooldown { .. }))
    );
    assert_eq!(
        status.deferred,
        count(|d| matches!(d, ControlDecision::DeferredByBudget { .. }))
    );
    assert_eq!(
        status.committed_jobs,
        count(|d| matches!(d, ControlDecision::Committed { .. }))
    );
    assert_eq!(
        status.aborted_jobs,
        count(|d| matches!(d, ControlDecision::Aborted { .. }))
    );
    assert_eq!(
        status.hot_splits,
        count(|d| matches!(d, ControlDecision::HotSplit { .. }))
    );
    assert_eq!(
        status.replans,
        count(|d| matches!(d, ControlDecision::Replanned { .. }))
    );

    // No trigger inside the cooldown that follows a committed or no-op job.
    let trigger_ticks: Vec<u64> = stream
        .iter()
        .filter_map(|d| match d {
            ControlDecision::Triggered { tick, .. } => Some(*tick),
            _ => None,
        })
        .collect();
    for d in &stream {
        let tc = match d {
            ControlDecision::Committed { tick, .. }
            | ControlDecision::NoImprovement { tick, .. } => *tick,
            _ => continue,
        };
        for t in &trigger_ticks {
            assert!(
                *t <= tc || *t > tc + config.cooldown_ticks,
                "trigger at tick {t} inside the cooldown after tick {tc}"
            );
        }
    }

    // Every trigger earns its streak: at least hysteresis - 1 suppressed
    // decisions since the previous terminal decision.
    let mut boundary = 0u64;
    for d in &stream {
        match d {
            ControlDecision::Triggered { tick, .. } => {
                let streak = stream
                    .iter()
                    .filter(|x| {
                        matches!(x, ControlDecision::SuppressedByHysteresis { tick: ht, .. }
                                 if *ht > boundary && *ht < *tick)
                    })
                    .count() as u32;
                assert!(
                    streak >= config.hysteresis_ticks - 1,
                    "trigger at tick {tick} with only {streak} hysteresis-suppressed \
                     ticks since tick {boundary}"
                );
                boundary = *tick;
            }
            ControlDecision::Committed { tick, .. }
            | ControlDecision::Aborted { tick, .. }
            | ControlDecision::NoImprovement { tick, .. } => boundary = *tick,
            _ => {}
        }
    }

    // No window ever exceeds the migration budget.
    for w in &status.windows {
        assert!(
            w.buckets <= config.budget.max_buckets_per_window
                && w.bytes <= config.budget.max_bytes_per_window,
            "window at tick {} shipped {} buckets / {} bytes over the budget",
            w.start_tick,
            w.buckets,
            w.bytes
        );
    }

    // Every committed auto-job left the dataset routable and complete.
    if let Some(ControlDecision::Committed { rebalance, .. }) = stream
        .iter()
        .rev()
        .find(|d| matches!(d, ControlDecision::Committed { .. }))
    {
        cluster.check_rebalance_integrity(ds, *rebalance).unwrap();
    }
    let expected: BTreeSet<u64> = (0..p.records).collect();
    assert_committed_set(&mut cluster, ds, &expected, "after the decision loop");
}

#[test]
fn decision_loop_invariants_hold_under_seeded_workloads() {
    check_seeded_cases(
        "control-plane decision-loop property",
        0x50a6_0901,
        CASES,
        |_seed, rng| random_loop_params(rng),
        run_decision_loop,
    );
}

#[derive(Debug)]
struct LossParams {
    records: u64,
    lose_second: bool,
    extra_ticks_before_loss: u64,
}

/// An auto-triggered job interrupted by a permanent node loss mid-wave must
/// be re-planned by the control plane's health monitoring and still commit
/// with full integrity.
fn run_loss_mid_wave(_seed: u64, p: &LossParams) {
    let mut cluster = test_cluster(4);
    cluster.set_heat_tracking(true);
    let ds = cluster
        .create_dataset(DatasetSpec::new("events", small_scheme()))
        .unwrap();
    cluster
        .session(ds)
        .unwrap()
        .ingest(&mut cluster, (0..p.records).map(record))
        .unwrap();
    let added = [cluster.add_node().unwrap(), cluster.add_node().unwrap()];

    // A tight bucket budget stretches the job over many windows, so the
    // node loss reliably lands while waves are still pending.
    let config = ControlConfig {
        budget: MigrationBudget {
            max_buckets_per_window: 2,
            max_bytes_per_window: 1 << 30,
            window_ticks: 4,
        },
        ..ControlConfig::default()
    };
    let mut plane = ControlPlane::new(config);
    let mut stream: Vec<ControlDecision> = Vec::new();
    let mut ticks = 0u64;
    loop {
        let report = plane.tick(&mut cluster).unwrap();
        ticks += 1;
        stream.extend(report.decisions);
        if report.job_in_flight {
            break;
        }
        assert!(ticks < 20, "no auto-job started within 20 ticks");
    }
    for _ in 0..p.extra_ticks_before_loss {
        let report = plane.tick(&mut cluster).unwrap();
        ticks += 1;
        stream.extend(report.decisions);
    }

    // Both joining nodes are destinations of the auto-planned moves; losing
    // either interrupts the job mid-wave.
    let lost = added[usize::from(p.lose_second)];
    cluster.lose_node(lost).unwrap();
    let loss_tick = ticks;

    for _ in 0..300 {
        let report = plane.tick(&mut cluster).unwrap();
        stream.extend(report.decisions);
        if !report.job_in_flight && plane.status().committed_jobs >= 1 {
            break;
        }
    }

    let status = plane.status();
    assert!(
        status.replans >= 1,
        "the control plane never re-planned around the lost node"
    );
    let committed_after_loss = stream
        .iter()
        .any(|d| matches!(d, ControlDecision::Committed { tick, .. } if *tick >= loss_tick));
    assert!(
        committed_after_loss,
        "the interrupted job never committed after the loss at tick {loss_tick}"
    );
    if let Some(ControlDecision::Committed { rebalance, .. }) = stream
        .iter()
        .rev()
        .find(|d| matches!(d, ControlDecision::Committed { .. }))
    {
        cluster.check_rebalance_integrity(ds, *rebalance).unwrap();
    }
    let expected: BTreeSet<u64> = (0..p.records).collect();
    assert_committed_set(&mut cluster, ds, &expected, "after the mid-wave node loss");
}

#[test]
fn auto_job_interrupted_by_node_loss_replans_and_commits() {
    check_seeded_cases(
        "control-plane mid-wave node-loss property",
        0x50a6_0902,
        CASES,
        |_seed, rng| LossParams {
            records: rng.gen_range(1500..3000),
            lose_second: rng.gen_range(0..2) == 1,
            extra_ticks_before_loss: rng.gen_range(0..3),
        },
        run_loss_mid_wave,
    );
}
